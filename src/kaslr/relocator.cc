#include "src/kaslr/relocator.h"

#include "src/base/fault_injection.h"
#include "src/trace/trace.h"

namespace imk {
namespace {

// Runs `body(i, stats)` for every i in [0, n), sharded over `pool` when one
// is supplied. Each shard accumulates into its own RelocStats and Status
// slot; shard results are merged in chunk order, so the combined stats and
// the surfaced error are identical for every worker count. Relocation bodies
// write only their own entry's field, so shards never race.
template <typename Body>
Result<RelocStats> ShardedApply(ThreadPool* pool, size_t n, const Body& body) {
  if (pool == nullptr || pool->workers() == 1 || n < 2) {
    RelocStats stats;
    for (size_t i = 0; i < n; ++i) {
      IMK_RETURN_IF_ERROR(body(i, stats));
    }
    return stats;
  }
  const uint32_t chunks = pool->workers();
  std::vector<RelocStats> chunk_stats(chunks);
  std::vector<Status> chunk_status(chunks);
  pool->ParallelForChunked(n, chunks, [&](uint32_t chunk, uint64_t begin, uint64_t end) {
    RelocStats& stats = chunk_stats[chunk];
    for (uint64_t i = begin; i < end; ++i) {
      Status status = body(i, stats);
      if (!status.ok()) {
        chunk_status[chunk] = std::move(status);
        return;
      }
    }
  });
  RelocStats merged;
  for (uint32_t chunk = 0; chunk < chunks; ++chunk) {
    IMK_RETURN_IF_ERROR(chunk_status[chunk]);
    merged.applied_abs64 += chunk_stats[chunk].applied_abs64;
    merged.applied_abs32 += chunk_stats[chunk].applied_abs32;
    merged.applied_inverse32 += chunk_stats[chunk].applied_inverse32;
    merged.section_adjusted += chunk_stats[chunk].section_adjusted;
    merged.flagged_inverse32 += chunk_stats[chunk].flagged_inverse32;
  }
  return merged;
}

// Accumulates partial stats from one pass into the boot total.
void Accumulate(RelocStats& total, const RelocStats& pass) {
  total.applied_abs64 += pass.applied_abs64;
  total.applied_abs32 += pass.applied_abs32;
  total.applied_inverse32 += pass.applied_inverse32;
  total.section_adjusted += pass.section_adjusted;
  total.flagged_inverse32 += pass.flagged_inverse32;
}

}  // namespace

Result<RelocStats> ApplyRelocations(LoadedImageView& view, const RelocInfo& relocs,
                                    uint64_t virt_delta, const RelocApplyOptions& options) {
  // Models a corrupt delta table / write fault inside the relocation walk.
  IMK_FAULT_POINT("relocator.apply");
  IMK_TRACE_SPAN("relocator", "relocator.apply");
  const uint32_t delta32 = static_cast<uint32_t>(virt_delta);
  RelocStats stats;

  IMK_ASSIGN_OR_RETURN(
      RelocStats abs64_stats,
      ShardedApply(options.pool, relocs.abs64.size(), [&](size_t i, RelocStats& s) -> Status {
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(relocs.abs64[i], 8));
        StoreLe64(p, LoadLe64(p) + virt_delta);
        ++s.applied_abs64;
        return OkStatus();
      }));
  Accumulate(stats, abs64_stats);

  IMK_ASSIGN_OR_RETURN(
      RelocStats abs32_stats,
      ShardedApply(options.pool, relocs.abs32.size(), [&](size_t i, RelocStats& s) -> Status {
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(relocs.abs32[i], 4));
        const uint32_t adjusted = LoadLe32(p) + delta32;
        IMK_RETURN_IF_ERROR(CheckAbs32(adjusted));
        StoreLe32(p, adjusted);
        ++s.applied_abs32;
        return OkStatus();
      }));
  Accumulate(stats, abs32_stats);

  IMK_ASSIGN_OR_RETURN(
      RelocStats inv_stats,
      ShardedApply(options.pool, relocs.inverse32.size(), [&](size_t i, RelocStats& s) -> Status {
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(relocs.inverse32[i], 4));
        const uint32_t value = LoadLe32(p);
        const uint32_t adjusted = value - delta32;
        if (Inverse32Underflowed(value, adjusted, delta32)) {
          ++s.flagged_inverse32;
        }
        StoreLe32(p, adjusted);
        ++s.applied_inverse32;
        return OkStatus();
      }));
  Accumulate(stats, inv_stats);
  return stats;
}

Result<RelocStats> ApplyRelocationsShuffled(LoadedImageView& view, const RelocInfo& relocs,
                                            uint64_t virt_delta, const ShuffleMap& map,
                                            const RelocApplyOptions& options) {
  IMK_FAULT_POINT("relocator.apply");
  IMK_TRACE_SPAN("relocator", "relocator.apply_shuffled");
  RelocScratch local_scratch;
  RelocScratch& scratch = options.scratch != nullptr ? *options.scratch : local_scratch;

  // ---- batch setup ----
  // Range ids are a pure function of the image's link-time geometry, so the
  // classification of every field location (sorted lists -> one linear
  // merge, the BatchDeltas strategy) and of every loaded value (unsorted ->
  // granule index) is computed once per image and reused across boots; a
  // repeat boot only refreshes the per-range delta array below.
  const uint64_t sig = map.OldGeometrySignature();
  const bool geometry_reusable = scratch.geometry_valid && scratch.geometry_sig == sig;
  scratch.geometry_sig = sig;
  scratch.geometry_valid = true;

  const std::vector<ShuffledRange>& ranges = map.ranges();
  scratch.range_delta.resize(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    scratch.range_delta[i] = ranges[i].delta();
  }
  const int64_t* range_delta = scratch.range_delta.data();

  // On a miss the cache identity is poisoned until the whole apply pass
  // succeeds (see the stamping below): an error mid-pass must not leave a
  // partially classified value_rid array that a later boot would trust.
  const auto prepare = [&](RelocScratch::ClassCache& cache, const std::vector<uint64_t>& fields,
                           bool classify_values) -> bool {
    const bool hit = geometry_reusable && cache.fields == fields.data() &&
                     cache.count == fields.size() && cache.field_rid.size() == fields.size() &&
                     (!classify_values || cache.value_rid.size() == fields.size());
    if (!hit) {
      cache.fields = nullptr;
      cache.count = 0;
      cache.field_rid.resize(fields.size());
      map.BatchRangeIds(fields.data(), fields.size(), cache.field_rid.data());
      cache.value_rid.clear();
      if (classify_values) {
        cache.value_rid.resize(fields.size());
      }
    }
    return hit;
  };
  const bool hit64 = prepare(scratch.abs64_class, relocs.abs64, /*classify_values=*/true);
  const bool hit32 = prepare(scratch.abs32_class, relocs.abs32, /*classify_values=*/true);
  prepare(scratch.inverse32_class, relocs.inverse32, /*classify_values=*/false);
  if (!hit64 || !hit32) {
    scratch.value_index.Rebuild(map);
  }
  const ShuffleDeltaIndex& index = scratch.value_index;

  const size_t n64 = relocs.abs64.size();
  const size_t n32 = relocs.abs32.size();
  const size_t ninv = relocs.inverse32.size();
  const uint32_t delta32 = static_cast<uint32_t>(virt_delta);
  RelocStats stats;

  const int32_t* field_rid64 = scratch.abs64_class.field_rid.data();
  int32_t* value_rid64 = scratch.abs64_class.value_rid.data();
  IMK_ASSIGN_OR_RETURN(
      RelocStats abs64_stats,
      ShardedApply(options.pool, n64, [&](size_t i, RelocStats& s) -> Status {
        const int32_t frid = field_rid64[i];
        const uint64_t moved =
            relocs.abs64[i] + static_cast<uint64_t>(frid >= 0 ? range_delta[frid] : 0);
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(moved, 8));
        const uint64_t value = LoadLe64(p);
        // Pre-relocation values are pristine image bytes, so the value's
        // range id is boot-invariant too; classify on the first boot only.
        const int32_t vrid = hit64 ? value_rid64[i] : (value_rid64[i] = index.RangeIdFor(value));
        const int64_t section_delta = vrid >= 0 ? range_delta[vrid] : 0;
        if (section_delta != 0) {
          ++s.section_adjusted;
        }
        StoreLe64(p, value + static_cast<uint64_t>(section_delta) + virt_delta);
        ++s.applied_abs64;
        return OkStatus();
      }));
  Accumulate(stats, abs64_stats);

  const int32_t* field_rid32 = scratch.abs32_class.field_rid.data();
  int32_t* value_rid32 = scratch.abs32_class.value_rid.data();
  IMK_ASSIGN_OR_RETURN(
      RelocStats abs32_stats,
      ShardedApply(options.pool, n32, [&](size_t i, RelocStats& s) -> Status {
        const int32_t frid = field_rid32[i];
        const uint64_t moved =
            relocs.abs32[i] + static_cast<uint64_t>(frid >= 0 ? range_delta[frid] : 0);
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(moved, 4));
        const uint32_t value = LoadLe32(p);
        // Recover the full link-time address to query the map.
        const uint64_t full =
            static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(value)));
        const int32_t vrid = hit32 ? value_rid32[i] : (value_rid32[i] = index.RangeIdFor(full));
        const int64_t section_delta = vrid >= 0 ? range_delta[vrid] : 0;
        if (section_delta != 0) {
          ++s.section_adjusted;
        }
        const uint32_t adjusted = value + static_cast<uint32_t>(section_delta) + delta32;
        IMK_RETURN_IF_ERROR(CheckAbs32(adjusted));
        StoreLe32(p, adjusted);
        ++s.applied_abs32;
        return OkStatus();
      }));
  Accumulate(stats, abs32_stats);

  const int32_t* field_rid_inv = scratch.inverse32_class.field_rid.data();
  IMK_ASSIGN_OR_RETURN(
      RelocStats inv_stats,
      ShardedApply(options.pool, ninv, [&](size_t i, RelocStats& s) -> Status {
        const int32_t frid = field_rid_inv[i];
        const uint64_t moved =
            relocs.inverse32[i] + static_cast<uint64_t>(frid >= 0 ? range_delta[frid] : 0);
        IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(moved, 4));
        const uint32_t value = LoadLe32(p);
        // value = C - vaddr(sym). The symbol's link address is not
        // recoverable from the field alone (C is arbitrary), so inverse
        // fields only support targets in unshuffled sections — the same
        // restriction Linux has (per-CPU inverse relocations target fixed
        // sections). Only the global slide is subtracted.
        const uint32_t adjusted = value - delta32;
        if (Inverse32Underflowed(value, adjusted, delta32)) {
          ++s.flagged_inverse32;
        }
        StoreLe32(p, adjusted);
        ++s.applied_inverse32;
        return OkStatus();
      }));
  Accumulate(stats, inv_stats);

  const auto stamp = [](RelocScratch::ClassCache& cache, const std::vector<uint64_t>& fields) {
    cache.fields = fields.data();
    cache.count = fields.size();
  };
  stamp(scratch.abs64_class, relocs.abs64);
  stamp(scratch.abs32_class, relocs.abs32);
  stamp(scratch.inverse32_class, relocs.inverse32);
  return stats;
}

Result<RelocStats> ApplyRelocationsShuffledPerEntry(LoadedImageView& view,
                                                    const RelocInfo& relocs, uint64_t virt_delta,
                                                    const ShuffleMap& map) {
  const uint32_t delta32 = static_cast<uint32_t>(virt_delta);
  RelocStats stats;
  // Sign-extension of the 32-bit entries mirrors x86_64: the recorded field
  // address itself may live in a moved function, so translate it first.
  for (uint64_t field_vaddr : relocs.abs64) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 8));
    const uint64_t value = LoadLe64(p);
    const int64_t section_delta = map.DeltaFor(value);
    if (section_delta != 0) {
      ++stats.section_adjusted;
    }
    StoreLe64(p, value + static_cast<uint64_t>(section_delta) + virt_delta);
    ++stats.applied_abs64;
  }
  for (uint64_t field_vaddr : relocs.abs32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 4));
    const uint32_t value = LoadLe32(p);
    const uint64_t full = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(value)));
    const int64_t section_delta = map.DeltaFor(full);
    if (section_delta != 0) {
      ++stats.section_adjusted;
    }
    const uint32_t adjusted = value + static_cast<uint32_t>(section_delta) + delta32;
    IMK_RETURN_IF_ERROR(CheckAbs32(adjusted));
    StoreLe32(p, adjusted);
    ++stats.applied_abs32;
  }
  for (uint64_t field_vaddr : relocs.inverse32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 4));
    const uint32_t value = LoadLe32(p);
    const uint32_t adjusted = value - delta32;
    if (Inverse32Underflowed(value, adjusted, delta32)) {
      ++stats.flagged_inverse32;
    }
    StoreLe32(p, adjusted);
    ++stats.applied_inverse32;
  }
  return stats;
}

}  // namespace imk
