#include "src/kaslr/relocator.h"

namespace imk {
namespace {

// 32-bit fields must stay sign-extendable to the same kernel window: after
// adjustment the value's high bit must still be set (top 2 GiB) for absolute
// fields. Inverse fields are free-form 32-bit quantities.
Status CheckAbs32(uint64_t adjusted) {
  if ((adjusted & 0x80000000ull) == 0) {
    return InternalError("abs32 relocation overflowed out of the kernel window");
  }
  return OkStatus();
}

}  // namespace

Result<RelocStats> ApplyRelocations(LoadedImageView& view, const RelocInfo& relocs,
                                    uint64_t virt_delta) {
  RelocStats stats;
  for (uint64_t field_vaddr : relocs.abs64) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(field_vaddr, 8));
    StoreLe64(p, LoadLe64(p) + virt_delta);
    ++stats.applied_abs64;
  }
  for (uint64_t field_vaddr : relocs.abs32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(field_vaddr, 4));
    const uint32_t adjusted = LoadLe32(p) + static_cast<uint32_t>(virt_delta);
    IMK_RETURN_IF_ERROR(CheckAbs32(adjusted));
    StoreLe32(p, adjusted);
    ++stats.applied_abs32;
  }
  for (uint64_t field_vaddr : relocs.inverse32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(field_vaddr, 4));
    StoreLe32(p, LoadLe32(p) - static_cast<uint32_t>(virt_delta));
    ++stats.applied_inverse32;
  }
  return stats;
}

Result<RelocStats> ApplyRelocationsShuffled(LoadedImageView& view, const RelocInfo& relocs,
                                            uint64_t virt_delta, const ShuffleMap& map) {
  RelocStats stats;
  // Sign-extension of the 32-bit entries mirrors x86_64: the recorded field
  // address itself may live in a moved function, so translate it first.
  for (uint64_t field_vaddr : relocs.abs64) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 8));
    const uint64_t value = LoadLe64(p);
    const int64_t section_delta = map.DeltaFor(value);
    if (section_delta != 0) {
      ++stats.section_adjusted;
    }
    StoreLe64(p, value + static_cast<uint64_t>(section_delta) + virt_delta);
    ++stats.applied_abs64;
  }
  for (uint64_t field_vaddr : relocs.abs32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 4));
    const uint32_t value = LoadLe32(p);
    // Recover the full link-time address to query the map.
    const uint64_t full = static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(value)));
    const int64_t section_delta = map.DeltaFor(full);
    if (section_delta != 0) {
      ++stats.section_adjusted;
    }
    const uint32_t adjusted =
        value + static_cast<uint32_t>(section_delta) + static_cast<uint32_t>(virt_delta);
    IMK_RETURN_IF_ERROR(CheckAbs32(adjusted));
    StoreLe32(p, adjusted);
    ++stats.applied_abs32;
  }
  for (uint64_t field_vaddr : relocs.inverse32) {
    IMK_ASSIGN_OR_RETURN(uint8_t* p, view.At(map.Translate(field_vaddr), 4));
    const uint32_t value = LoadLe32(p);
    // value = C - vaddr(sym). The symbol's link address is not recoverable
    // from the field alone (C is arbitrary), so inverse fields only support
    // targets in unshuffled sections — the same restriction Linux has
    // (per-CPU inverse relocations target fixed sections). Only the global
    // slide is subtracted.
    StoreLe32(p, value - static_cast<uint32_t>(virt_delta));
    ++stats.applied_inverse32;
  }
  return stats;
}

}  // namespace imk
