// ShuffleMap: where did each function section move?
//
// Built by the FGKASLR engine after permuting function sections; queried
// either per entry by binary search (as in the Linux FGKASLR implementation)
// or in batch. The batch forms exist because the relocation walk is the
// monitor's hottest loop (paper §5-§6): with n relocations and m moved
// sections, per-entry binary search costs O(n log m), while a single linear
// merge over the (already sorted) relocation list and the sorted ranges
// costs O(n + m), and a per-boot granule index answers unsorted value
// queries in O(1) after an O(region) build.
#ifndef IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_
#define IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace imk {

// One moved (or kept) section.
struct ShuffledRange {
  uint64_t old_vaddr = 0;
  uint64_t new_vaddr = 0;
  uint64_t size = 0;

  int64_t delta() const { return static_cast<int64_t>(new_vaddr - old_vaddr); }
};

// Sorted-by-old_vaddr collection of moved ranges.
class ShuffleMap {
 public:
  // Ranges must be non-overlapping in old-vaddr space; the constructor sorts.
  explicit ShuffleMap(std::vector<ShuffledRange> ranges);
  ShuffleMap() = default;

  // Displacement to add to an address inside a moved range (0 if the address
  // is not in any shuffled section). Binary search, like Linux FGKASLR.
  int64_t DeltaFor(uint64_t old_vaddr) const;

  // Maps an old address to its new location.
  uint64_t Translate(uint64_t old_vaddr) const {
    return old_vaddr + static_cast<uint64_t>(DeltaFor(old_vaddr));
  }

  // Index into ranges() of the range containing old_vaddr, -1 if none. The
  // range id depends only on the *old* (link-time) geometry, so for a given
  // image it is identical across boots — the property the relocator's
  // classification caches rely on. DeltaFor(a) == (RangeIdFor(a) >= 0 ?
  // ranges()[RangeIdFor(a)].delta() : 0).
  int32_t RangeIdFor(uint64_t old_vaddr) const;

  // Batch form of DeltaFor for an ascending address list: out[i] =
  // DeltaFor(addrs[i]), computed by one linear merge over (addrs x ranges).
  // Precondition: addrs is sorted ascending (relocation lists are; see
  // kernel/relocs.h). Results are identical to per-entry DeltaFor.
  void BatchDeltas(const uint64_t* addrs, size_t count, int64_t* out) const;

  // Same linear merge, but emitting range ids (see RangeIdFor) instead of
  // deltas — the boot-invariant form a caller can cache and combine with
  // fresh per-boot deltas.
  void BatchRangeIds(const uint64_t* addrs, size_t count, int32_t* out) const;

  // Order-independent hash of the old-address geometry (old_vaddr, size of
  // every range, in sorted order). Two maps built from the same image share
  // the signature whatever the permutation; it keys caches of RangeIdFor
  // results across boots.
  uint64_t OldGeometrySignature() const;

  // Permutation-SENSITIVE hash over (old_vaddr, new_vaddr) of every range:
  // two boots of the same image share the digest only when every function
  // section landed at the same place. Complements OldGeometrySignature (which
  // is deliberately permutation-blind); the cross-VM layout-uniqueness check
  // (src/verify/layout_uniqueness.h) identifies an FGKASLR layout by
  // (virt_slide, this digest). 0 only for an empty map.
  uint64_t PermutationDigest() const;

  const std::vector<ShuffledRange>& ranges() const { return ranges_; }
  bool empty() const { return ranges_.empty(); }

 private:
  std::vector<ShuffledRange> ranges_;
};

// Constant-time DeltaFor/RangeIdFor for *unsorted* queries (the values
// loaded out of abs64/abs32 fields point anywhere in text): a granule-
// indexed table over the shuffled span. Granules fully inside one range (or
// in no range) store the range id directly; the O(m) granules straddling a
// range boundary store a sentinel and fall back to the map's binary search,
// so every answer is exactly DeltaFor()/RangeIdFor(). The granule table
// depends only on the old-address geometry, so Rebuild() for a new boot of
// the same image (same sections, fresh permutation) skips the O(span)
// granule refill and only refreshes the per-range delta array — the index
// is a reusable per-boot translation scratch.
class ShuffleDeltaIndex {
 public:
  ShuffleDeltaIndex() = default;

  // Rebuilds the index for `map`. O(span / granule + m) the first time a
  // geometry is seen, O(m) for repeat boots of the same image.
  void Rebuild(const ShuffleMap& map);

  int32_t RangeIdFor(uint64_t old_vaddr) const {
    if (old_vaddr < span_start_ || old_vaddr >= span_end_) {
      return kNoRange;
    }
    const int32_t entry = granules_[(old_vaddr - span_start_) >> kGranuleShift];
    if (entry != kMixedGranule) {
      return entry;
    }
    return map_->RangeIdFor(old_vaddr);
  }

  int64_t DeltaFor(uint64_t old_vaddr) const {
    const int32_t rid = RangeIdFor(old_vaddr);
    return rid >= 0 ? deltas_[rid] : 0;
  }

  uint64_t Translate(uint64_t old_vaddr) const {
    return old_vaddr + static_cast<uint64_t>(DeltaFor(old_vaddr));
  }

 private:
  static constexpr int kGranuleShift = 4;  // 16-byte granules
  static constexpr int32_t kMixedGranule = INT32_MIN;
  static constexpr int32_t kNoRange = -1;

  const ShuffleMap* map_ = nullptr;
  uint64_t span_start_ = 0;
  uint64_t span_end_ = 0;
  uint64_t geometry_sig_ = 0;
  bool geometry_valid_ = false;
  std::vector<int32_t> granules_;  // range id, kNoRange, or kMixedGranule
  std::vector<int64_t> deltas_;    // per-boot delta of each range id
};

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_
