// ShuffleMap: where did each function section move?
//
// Built by the FGKASLR engine after permuting function sections; queried by
// binary search (as in the Linux FGKASLR implementation) to translate any
// link-time virtual address into its post-shuffle address.
#ifndef IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_
#define IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_

#include <cstdint>
#include <vector>

namespace imk {

// One moved (or kept) section.
struct ShuffledRange {
  uint64_t old_vaddr = 0;
  uint64_t new_vaddr = 0;
  uint64_t size = 0;

  int64_t delta() const { return static_cast<int64_t>(new_vaddr - old_vaddr); }
};

// Sorted-by-old_vaddr collection of moved ranges.
class ShuffleMap {
 public:
  // Ranges must be non-overlapping in old-vaddr space; the constructor sorts.
  explicit ShuffleMap(std::vector<ShuffledRange> ranges);
  ShuffleMap() = default;

  // Displacement to add to an address inside a moved range (0 if the address
  // is not in any shuffled section). Binary search, like Linux FGKASLR.
  int64_t DeltaFor(uint64_t old_vaddr) const;

  // Maps an old address to its new location.
  uint64_t Translate(uint64_t old_vaddr) const {
    return old_vaddr + static_cast<uint64_t>(DeltaFor(old_vaddr));
  }

  const std::vector<ShuffledRange>& ranges() const { return ranges_; }
  bool empty() const { return ranges_.empty(); }

 private:
  std::vector<ShuffledRange> ranges_;
};

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_SHUFFLE_MAP_H_
