// Random offset selection: the Linux KASLR placement algorithm (paper §4.3).
//
// Virtual: a CONFIG_PHYSICAL_ALIGN-aligned slide in [0, KERNEL_IMAGE_SIZE -
// image_size - PHYSICAL_START] added to the link address — i.e. the kernel
// lands between its default 16 MiB offset and the 1 GiB limit ("to avoid the
// fixmap"). Physical: an aligned load address in [PHYSICAL_START,
// guest_mem - reserved], decoupled from the virtual choice (Linux decoupled
// these for extra virtual entropy; §3.2).
#ifndef IMKASLR_SRC_KASLR_RANDOM_OFFSET_H_
#define IMKASLR_SRC_KASLR_RANDOM_OFFSET_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/elf/elf_note.h"

namespace imk {

// Inputs to placement.
struct OffsetConstraints {
  uint64_t image_mem_size = 0;   // kernel memsz span (text..bss end)
  uint64_t guest_mem_size = 0;   // physical RAM available
  uint64_t reserved_tail = 0;    // phys bytes to keep free after the image (boot stack)
  KernelConstantsNote constants;  // link-time constants (note or hardcoded)
};

// A placement decision.
struct OffsetChoice {
  uint64_t virt_slide = 0;      // added to every kernel virtual address
  uint64_t phys_load_addr = 0;  // physical address of _text
};

// Fills `constants` with the hardcoded defaults from src/kernel/layout.h
// (what the paper's prototype does when no ELF note is present).
KernelConstantsNote DefaultKernelConstants();

// Picks a random placement satisfying `constraints`. Fails if the image
// cannot fit.
Result<OffsetChoice> ChooseRandomOffsets(const OffsetConstraints& constraints, Rng& rng);

// Number of distinct virtual slide values (the virtual entropy pool).
Result<uint64_t> VirtualSlots(const OffsetConstraints& constraints);

// log2(VirtualSlots): bits of virtual entropy.
Result<double> VirtualEntropyBits(const OffsetConstraints& constraints);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_RANDOM_OFFSET_H_
