// FGKASLR engine: function-granular randomization (paper §3.2, §4.3).
//
// Steps, mirroring the Linux fg-kaslr implementation:
//   1. parse the kernel ELF section headers and collect the per-function
//      sections produced by -ffunction-sections (".text.fn_*" here);
//   2. Fisher-Yates shuffle and contiguous re-layout, giving every function
//      a unique random offset;
//   3. physically move the section bytes (via a full copy of the text range,
//      as the bootstrap loader must do — and whose 8x heap cost the paper
//      calls out in §5.2);
//   4. fix up and re-sort the address-ordered tables that the shuffle broke:
//      kallsyms, the exception table, and (optionally) the ORC unwind table.
//
// Step 1 is boot-invariant: its output (FgMetadata) depends only on the
// image bytes, so the monitor's ImageTemplateCache computes it once per
// kernel and every boot re-runs only steps 2-4 with a fresh seed. Step 3's
// placement loop moves disjoint byte ranges and shards over a ThreadPool;
// the shuffle order itself comes from a serial Fisher-Yates walk of the
// seeded RNG, so layouts never depend on worker interleaving.
//
// Kallsyms fixup is ~22% of FGKASLR boot cost (paper §4.3), so it can be
// made lazy (deferred to first use, re-using the port hook) or skipped.
#ifndef IMKASLR_SRC_KASLR_FGKASLR_H_
#define IMKASLR_SRC_KASLR_FGKASLR_H_

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/threadpool.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/relocator.h"
#include "src/kaslr/shuffle_map.h"

namespace imk {

// What to do about /proc/kallsyms (paper §4.3).
enum class KallsymsFixup {
  kEager,  // fix up during randomization (the fair-comparison baseline)
  kLazy,   // defer to first guest access (the paper's proposal)
  kSkip,   // never fix up (the paper's prototype behaviour)
};

struct FgKaslrParams {
  KallsymsFixup kallsyms = KallsymsFixup::kEager;
  bool fixup_orc = true;  // only relevant if the kernel has an ORC table
};

// Wall-clock breakdown of the engine's steps (measured host nanoseconds).
struct FgKaslrTimings {
  uint64_t parse_ns = 0;     // section collection (0 when served from a template)
  uint64_t shuffle_ns = 0;   // permutation + layout
  uint64_t move_ns = 0;      // byte movement (incl. the text copy)
  uint64_t kallsyms_ns = 0;  // kallsyms fixup + sort
  uint64_t tables_ns = 0;    // ex_table / ORC fixup + sort

  uint64_t total() const {
    return parse_ns + shuffle_ns + move_ns + kallsyms_ns + tables_ns;
  }
};

struct FgKaslrResult {
  ShuffleMap map;
  uint32_t sections_shuffled = 0;
  FgKaslrTimings timings;

  // For a deferred (lazy) kallsyms fixup: table location (link vaddrs) and
  // entry count; kallsyms_pending is true until FixupKallsymsTable runs.
  bool kallsyms_pending = false;
  uint64_t kallsyms_vaddr = 0;
  uint64_t kallsyms_count = 0;
};

// One .text.fn_* section, by link address.
struct FgFunctionSection {
  uint64_t vaddr = 0;
  uint64_t size = 0;
};

// Location of an address-ordered table that the shuffle invalidates.
struct FgTable {
  bool present = false;
  uint64_t vaddr = 0;
  uint64_t size = 0;
};

// Step 1's boot-invariant output: everything the shuffle needs that depends
// only on the image bytes. Cacheable across boots of the same kernel.
struct FgMetadata {
  std::vector<FgFunctionSection> sections;  // sorted ascending by vaddr
  FgTable kallsyms;                         // __kallsyms
  FgTable ex_table;                         // __ex_table
  FgTable orc;                              // __orc_unwind
};

// Collects function sections and table locations from the kernel ELF.
// kFailedPrecondition if the kernel is not fgkaslr-capable (no per-function
// sections or no symbol table); missing individual tables are recorded as
// absent and surface only when the shuffle needs them.
Result<FgMetadata> ParseFgMetadata(const ElfReader& elf);

// Reusable execution resources for steps 2-4; all optional.
struct FgExecContext {
  ThreadPool* pool = nullptr;       // shards the placement memcpy loop
  RelocScratch* scratch = nullptr;  // reused value index for table fixups
  Bytes* move_scratch = nullptr;    // reused text-copy buffer (the §5.2 heap)
  // Immutable pre-randomization image aligned with `view` (same base vaddr
  // and size), e.g. an ImageTemplate's pristine buffer. When set, sections
  // are placed directly from it and the defensive region copy — the heap
  // cost §5.2 charges to the bootstrap loader, which must shuffle in place
  // — is skipped entirely. Final bytes are identical either way: the
  // in-place path's scratch snapshot equals the pristine region.
  ByteSpan pristine;
  // Run steps 3-4 exactly as the pre-batch bootstrap loader would: defensive
  // region copy, placement in section order, per-entry binary-search table
  // fixups followed by a full comparison sort. Ignores pool/scratch/pristine.
  // Produces bit-identical images to the fast path; the serial baselines in
  // bench/micro_parallel and the equivalence tests rely on it.
  bool reference = false;
};

// Runs steps 2-4 over a kernel loaded (at link addresses) in `view`, using
// previously collected metadata. Deterministic in (meta, params, seed):
// identical for every pool size and for cached vs freshly parsed metadata.
Result<FgKaslrResult> ShuffleFunctionsPreparsed(const FgMetadata& meta, LoadedImageView& view,
                                                const FgKaslrParams& params, Rng& rng,
                                                const FgExecContext& context = {});

// Runs steps 1-4 over a kernel loaded (at link addresses) in `view`.
// `elf` reads the original image file for section/symbol metadata.
Result<FgKaslrResult> ShuffleFunctions(const ElfReader& elf, LoadedImageView& view,
                                       const FgKaslrParams& params, Rng& rng);

// Fixes up and re-sorts a kallsyms table in place (used directly by the
// engine in eager mode, and by the monitor's first-touch hook in lazy mode).
Status FixupKallsymsTable(LoadedImageView& view, uint64_t table_vaddr, uint64_t count,
                          const ShuffleMap& map);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_FGKASLR_H_
