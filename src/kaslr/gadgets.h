// Code-reuse gadget analysis (paper §3: KASLR exists to make gadgets "hard
// for an attacker to find").
//
// A gadget here is a short instruction suffix ending in RET — the VK64
// analogue of a ROP gadget. The scanner enumerates them from kernel text and
// quantifies what randomization does to their addresses across boots: with
// KASLR all gadgets share one offset; with FGKASLR each moves independently.
#ifndef IMKASLR_SRC_KASLR_GADGETS_H_
#define IMKASLR_SRC_KASLR_GADGETS_H_

#include <cstdint>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/result.h"

namespace imk {

// One discovered gadget.
struct Gadget {
  uint64_t vaddr = 0;       // address of the gadget's first instruction
  uint32_t instructions = 0;  // length in instructions, including the RET
};

struct GadgetScanOptions {
  uint32_t max_instructions = 4;  // longest suffix to report (incl. RET)
};

// Scans executable bytes at `vaddr` for RET-terminated suffixes. The scan
// decodes forward from every instruction boundary (VK64 has no overlapping
// decodings from unaligned entry the way x86 does, so boundaries suffice).
std::vector<Gadget> ScanGadgets(ByteSpan text, uint64_t vaddr,
                                const GadgetScanOptions& options = GadgetScanOptions());

// Address-diversity statistics for the same gadget population observed in
// two differently randomized instances of one kernel.
struct GadgetDiversity {
  uint64_t gadgets = 0;          // gadgets compared
  uint64_t same_delta = 0;       // gadgets whose (b - a) delta equals the modal delta
  double modal_delta_fraction = 0;  // same_delta / gadgets; 1.0 = one leak reveals all
};

// Matches gadgets between two runtime scans of the same kernel by *content*
// (the gadget bytes plus surrounding context — what an attacker with a copy
// of the kernel binary would pattern-match), then reports how concentrated
// the address deltas are. A modal fraction of 1.0 means a single leaked
// gadget address reveals every other gadget (plain KASLR); FGKASLR scatters
// the deltas. `text_a`/`text_b` are the scanned byte ranges, needed for the
// context keys.
Result<GadgetDiversity> CompareGadgetAddresses(const std::vector<Gadget>& a, ByteSpan text_a,
                                               uint64_t vaddr_a, const std::vector<Gadget>& b,
                                               ByteSpan text_b, uint64_t vaddr_b);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_GADGETS_H_
