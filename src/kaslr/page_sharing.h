// Content-based page sharing analysis (paper §6, "Memory density despite
// KASLR").
//
// Hosts reclaim memory by merging identical pages across VMs (KSM-style).
// The paper observes that fine-grained randomization nullifies this: every
// FGKASLR instance lays its functions out differently, so almost no kernel
// pages match between instances — unless the host deliberately reuses a
// random seed for a group of related VMs, a trade-off only an *in-monitor*
// implementation can manage. These utilities quantify that.
#ifndef IMKASLR_SRC_KASLR_PAGE_SHARING_H_
#define IMKASLR_SRC_KASLR_PAGE_SHARING_H_

#include <cstdint>

#include "src/base/bytes.h"

namespace imk {

// Result of comparing the page contents of two memory regions.
struct PageSharingReport {
  uint64_t pages_a = 0;
  uint64_t pages_b = 0;
  uint64_t zero_pages_b = 0;    // trivially sharable (zero) pages in b
  uint64_t sharable_pages = 0;  // non-zero pages of b whose content exists in a

  // Fraction of b's non-zero pages a KSM-style merger could share with a.
  double SharableFraction() const {
    const uint64_t nonzero = pages_b - zero_pages_b;
    return nonzero == 0 ? 0.0
                        : static_cast<double>(sharable_pages) / static_cast<double>(nonzero);
  }
};

// Compares `b`'s pages against `a`'s by content (position-independent, the
// way content-based merging works). Both sizes are truncated to whole pages.
PageSharingReport ComparePages(ByteSpan a, ByteSpan b, uint32_t page_size = 4096);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_PAGE_SHARING_H_
