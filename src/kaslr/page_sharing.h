// Content-based page sharing analysis (paper §6, "Memory density despite
// KASLR").
//
// Hosts reclaim memory by merging identical pages across VMs (KSM-style).
// The paper observes that fine-grained randomization nullifies this: every
// FGKASLR instance lays its functions out differently, so almost no kernel
// pages match between instances — unless the host deliberately reuses a
// random seed for a group of related VMs, a trade-off only an *in-monitor*
// implementation can manage. These utilities quantify that.
#ifndef IMKASLR_SRC_KASLR_PAGE_SHARING_H_
#define IMKASLR_SRC_KASLR_PAGE_SHARING_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/base/frame_store.h"

namespace imk {

// Result of comparing the page contents of two memory regions.
struct PageSharingReport {
  uint64_t pages_a = 0;
  uint64_t pages_b = 0;
  uint64_t zero_pages_b = 0;    // trivially sharable (zero) pages in b
  uint64_t sharable_pages = 0;  // non-zero pages of b whose content exists in a

  // Fraction of b's non-zero pages a KSM-style merger could share with a.
  double SharableFraction() const {
    const uint64_t nonzero = pages_b - zero_pages_b;
    return nonzero == 0 ? 0.0
                        : static_cast<double>(sharable_pages) / static_cast<double>(nonzero);
  }
};

// Compares `b`'s pages against `a`'s by content (position-independent, the
// way content-based merging works). Both sizes are truncated to whole pages.
PageSharingReport ComparePages(ByteSpan a, ByteSpan b, uint32_t page_size = 4096);

// Host-visible monitor-CoW sharing between two VMs' paged guest memories.
//
// Unlike KSM-style content merging — which must scan, hash, and compare page
// contents after the fact — the monitor *knows* which frames still alias the
// shared kernel template: it mapped them zero-copy at load and only broke
// the aliases the randomizer wrote through. A template frame aliased by both
// VMs is physically one host frame. Alias identity is position-independent
// (the template pointer, not the guest-physical slot), so two VMs share
// template frames even when KASLR loaded their images at different physical
// bases.
struct MonitorCowReport {
  uint64_t frames_a = 0;   // frames spanned by region a
  uint64_t frames_b = 0;
  uint64_t aliased_a = 0;  // a's frames still aliased to a template
  uint64_t aliased_b = 0;
  uint64_t dirty_a = 0;    // a's privately materialized frames
  uint64_t dirty_b = 0;
  uint64_t shared_frames = 0;  // template frames aliased by BOTH VMs

  // Fraction of b's spanned frames that are one host frame with a.
  double SharedFraction() const {
    return frames_b == 0 ? 0.0
                         : static_cast<double>(shared_frames) / static_cast<double>(frames_b);
  }
};

// Compares the frame tables of [phys_a, phys_a + len) in `a` against
// [phys_b, phys_b + len) in `b`. Both ranges must be frame-aligned and in
// bounds; len is truncated to whole frames.
MonitorCowReport CompareMonitorCow(const FrameStore& a, uint64_t phys_a, const FrameStore& b,
                                   uint64_t phys_b, uint64_t len);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_PAGE_SHARING_H_
