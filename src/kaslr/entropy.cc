#include "src/kaslr/entropy.h"

#include <cmath>
#include <set>
#include <vector>

namespace imk {

Result<EntropyReport> MeasureOffsetEntropy(const OffsetConstraints& constraints, uint64_t trials,
                                           uint64_t seed, uint32_t buckets) {
  EntropyReport report;
  report.trials = trials;
  report.buckets = buckets;
  IMK_ASSIGN_OR_RETURN(report.possible_slots, VirtualSlots(constraints));
  report.theoretical_bits = std::log2(static_cast<double>(report.possible_slots));

  Rng rng(seed);
  std::set<uint64_t> distinct;
  std::vector<uint64_t> histogram(buckets, 0);
  const uint64_t max_slide =
      (report.possible_slots - 1) * constraints.constants.physical_align;
  uint64_t min_seen = UINT64_MAX;
  uint64_t max_seen = 0;
  for (uint64_t t = 0; t < trials; ++t) {
    IMK_ASSIGN_OR_RETURN(OffsetChoice choice, ChooseRandomOffsets(constraints, rng));
    distinct.insert(choice.virt_slide);
    min_seen = std::min(min_seen, choice.virt_slide);
    max_seen = std::max(max_seen, choice.virt_slide);
    const uint64_t bucket =
        max_slide == 0
            ? 0
            : std::min<uint64_t>(buckets - 1, choice.virt_slide * buckets / (max_slide + 1));
    ++histogram[bucket];
  }
  report.distinct_slides = distinct.size();
  report.min_slide = static_cast<double>(min_seen);
  report.max_slide = static_cast<double>(max_seen);

  const double expected = static_cast<double>(trials) / buckets;
  double chi = 0;
  for (uint64_t count : histogram) {
    const double diff = static_cast<double>(count) - expected;
    chi += diff * diff / expected;
  }
  report.chi_squared = chi;
  return report;
}

double ShuffleEntropyBits(uint64_t num_sections) {
  // log2(n!) = lgamma(n + 1) / ln(2)
  return std::lgamma(static_cast<double>(num_sections) + 1.0) / std::log(2.0);
}

}  // namespace imk
