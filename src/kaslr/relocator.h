// The relocation engine: applies the three Linux relocation classes to a
// loaded kernel image (paper §3.2). Shared verbatim by the in-monitor path
// and the bootstrap-loader simulation — the paper's point is that the
// *algorithm* is identical and only the controlling principal differs (§4.3).
#ifndef IMKASLR_SRC_KASLR_RELOCATOR_H_
#define IMKASLR_SRC_KASLR_RELOCATOR_H_

#include <cstdint>

#include "src/base/bytes.h"
#include "src/base/result.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/relocs.h"

namespace imk {

// A writable window onto a loaded kernel image: link-time virtual addresses
// in [base_vaddr, base_vaddr + buffer.size()) resolve into `buffer` (which
// typically aliases guest physical memory at the chosen load address).
class LoadedImageView {
 public:
  LoadedImageView(MutableByteSpan buffer, uint64_t base_vaddr)
      : buffer_(buffer), base_vaddr_(base_vaddr) {}

  // Host pointer for `len` bytes at link vaddr `vaddr`; kOutOfRange if the
  // range leaves the window.
  Result<uint8_t*> At(uint64_t vaddr, uint64_t len) {
    if (vaddr < base_vaddr_) {
      return OutOfRangeError("relocation field below loaded image base: vaddr " +
                             HexString(vaddr) + " < base " + HexString(base_vaddr_));
    }
    const uint64_t offset = vaddr - base_vaddr_;
    if (offset >= buffer_.size() || len > buffer_.size() - offset) {
      return OutOfRangeError("relocation field outside loaded image: vaddr " + HexString(vaddr));
    }
    return buffer_.data() + offset;
  }

  uint64_t base_vaddr() const { return base_vaddr_; }
  uint64_t size() const { return buffer_.size(); }
  MutableByteSpan buffer() { return buffer_; }

 private:
  MutableByteSpan buffer_;
  uint64_t base_vaddr_;
};

// Counters for one relocation pass.
struct RelocStats {
  uint64_t applied_abs64 = 0;
  uint64_t applied_abs32 = 0;
  uint64_t applied_inverse32 = 0;
  uint64_t section_adjusted = 0;  // values additionally shifted by a shuffled-section delta

  uint64_t total() const { return applied_abs64 + applied_abs32 + applied_inverse32; }
};

// Applies plain KASLR relocations: every listed field is adjusted by
// `virt_delta` (added for abs64/abs32, subtracted for inverse32). 32-bit
// fields are checked against overflow out of the sign-extendable window.
Result<RelocStats> ApplyRelocations(LoadedImageView& view, const RelocInfo& relocs,
                                    uint64_t virt_delta);

// FGKASLR-aware variant: in addition to `virt_delta`, both the *location* of
// each field (it may live inside a moved function) and the *value* it holds
// (it may point into a moved function) are adjusted through a binary search
// of the shuffle map — the extra per-entry work the paper's §3.2 describes.
Result<RelocStats> ApplyRelocationsShuffled(LoadedImageView& view, const RelocInfo& relocs,
                                            uint64_t virt_delta, const ShuffleMap& map);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_RELOCATOR_H_
