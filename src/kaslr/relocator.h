// The relocation engine: applies the three Linux relocation classes to a
// loaded kernel image (paper §3.2). Shared verbatim by the in-monitor path
// and the bootstrap-loader simulation — the paper's point is that the
// *algorithm* is identical and only the controlling principal differs (§4.3).
//
// Two execution strategies produce bit-identical images and stats:
//   - per-entry: the reference walk, one ShuffleMap binary search per lookup
//     (what the Linux bootstrap loader does);
//   - batch: ShuffleMap::BatchDeltas linear merges for the (sorted) field
//     lists plus a ShuffleDeltaIndex for the unsorted field *values*, with
//     the apply loop optionally sharded over a ThreadPool. Every relocation
//     writes only its own field, so shards are data-race-free.
#ifndef IMKASLR_SRC_KASLR_RELOCATOR_H_
#define IMKASLR_SRC_KASLR_RELOCATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/base/bytes.h"
#include "src/base/frame_store.h"
#include "src/base/result.h"
#include "src/base/threadpool.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/relocs.h"

namespace imk {

// A writable window onto a loaded kernel image: link-time virtual addresses
// in [base_vaddr, base_vaddr + size) resolve into the backing storage.
//
// Two backings:
//   - a flat buffer (host-side staging, bootstrap loader, tests);
//   - paged guest memory (FrameStore) at a physical load address. Every
//     randomizer write funnels through At(), so in this mode At() doubles as
//     the copy-on-write fault point: only frames the randomizer actually
//     touches — relocated fields, shuffled FGKASLR sections, fixup tables —
//     are materialized per-VM, everything else stays aliased to the shared
//     kernel template.
class LoadedImageView {
 public:
  LoadedImageView(MutableByteSpan buffer, uint64_t base_vaddr)
      : buffer_(buffer), size_(buffer.size()), base_vaddr_(base_vaddr) {}

  LoadedImageView(FrameStore& frames, uint64_t phys_base, uint64_t size, uint64_t base_vaddr)
      : frames_(&frames), phys_base_(phys_base), size_(size), base_vaddr_(base_vaddr) {}

  // Writable host pointer for `len` bytes at link vaddr `vaddr`; kOutOfRange
  // if the range leaves the window. Paged backing materializes the covered
  // frames (contiguously — see FrameStore::WritablePtr).
  Result<uint8_t*> At(uint64_t vaddr, uint64_t len) {
    if (vaddr < base_vaddr_) {
      return OutOfRangeError("relocation field below loaded image base: vaddr " +
                             HexString(vaddr) + " < base " + HexString(base_vaddr_));
    }
    const uint64_t offset = vaddr - base_vaddr_;
    if (offset >= size_ || len > size_ - offset) {
      return OutOfRangeError("relocation field outside loaded image: vaddr " + HexString(vaddr));
    }
    if (frames_ != nullptr) {
      return frames_->WritablePtr(phys_base_ + offset, len);
    }
    return buffer_.data() + offset;
  }

  uint64_t base_vaddr() const { return base_vaddr_; }
  uint64_t size() const { return size_; }

 private:
  MutableByteSpan buffer_;            // flat backing (unused when paged)
  FrameStore* frames_ = nullptr;      // paged backing
  uint64_t phys_base_ = 0;
  uint64_t size_ = 0;
  uint64_t base_vaddr_;
};

// Counters for one relocation pass.
struct RelocStats {
  uint64_t applied_abs64 = 0;
  uint64_t applied_abs32 = 0;
  uint64_t applied_inverse32 = 0;
  uint64_t section_adjusted = 0;  // values additionally shifted by a shuffled-section delta
  // inverse32 adjustments whose 32-bit subtraction wrapped past zero — the
  // value left the representable window, which on real hardware would
  // sign-extend to a different quadrant. Flagged, not fatal: inverse fields
  // are free-form quantities and small constants legitimately go negative.
  uint64_t flagged_inverse32 = 0;

  uint64_t total() const { return applied_abs64 + applied_abs32 + applied_inverse32; }

  bool operator==(const RelocStats&) const = default;
};

// 32-bit absolute fields must stay sign-extendable to the kernel window:
// after adjustment the high bit must still be set (top 2 GiB). Shared by the
// serial, shuffled, and batch apply paths and by the bootstrap loader.
inline Status CheckAbs32(uint64_t adjusted) {
  if ((adjusted & 0x80000000ull) == 0) {
    return InternalError("abs32 relocation overflowed out of the kernel window");
  }
  return OkStatus();
}

// Window check for inverse32 fields: subtracting the slide must not wrap the
// 32-bit field past zero (original < delta as uint32). Returns true when the
// adjustment underflowed and should be flagged in RelocStats.
inline bool Inverse32Underflowed(uint32_t original, uint32_t adjusted, uint32_t delta32) {
  return delta32 != 0 && adjusted > original;
}

// Reusable per-boot buffers for the batch strategy. Beyond keeping
// allocations alive, the scratch caches the *classification* of each
// relocation: which shuffled range a field's location and its loaded value
// fall in depends only on the image's link-time geometry, so it is
// identical for every boot of the same image. Repeat boots skip the merge
// and index lookups entirely and recombine the cached range ids with the
// fresh permutation's per-range deltas. The cache is keyed by the identity
// of the relocation arrays plus ShuffleMap::OldGeometrySignature(); it
// assumes the caller keeps the RelocInfo storage stable while reusing the
// scratch (true for the sidecar/template-held fleets it serves).
struct RelocScratch {
  // Boot-invariant classification of one sorted relocation list.
  struct ClassCache {
    const uint64_t* fields = nullptr;  // identity of the source array
    size_t count = 0;
    std::vector<int32_t> field_rid;  // range id of each field location (-1 none)
    std::vector<int32_t> value_rid;  // range id of each loaded value (abs64/abs32)
  };

  ShuffleDeltaIndex value_index;
  std::vector<int64_t> range_delta;  // per boot: delta of each range id
  ClassCache abs64_class;
  ClassCache abs32_class;
  ClassCache inverse32_class;  // field classification only
  uint64_t geometry_sig = 0;
  bool geometry_valid = false;

  // Reusable buffers for the FGKASLR fixup-table merge (fgkaslr.cc): the
  // moved-entry bucket, the unmoved-entry bucket, and the per-range run
  // bookkeeping (open runs, rid -> run, new-start keys, emit order).
  std::vector<std::pair<uint64_t, uint64_t>> table_moved;
  std::vector<std::pair<uint64_t, uint64_t>> table_unmoved;
  std::vector<std::pair<uint32_t, uint32_t>> table_runs;
  std::vector<int32_t> table_run_of_rid;
  std::vector<uint64_t> table_run_new_start;
  std::vector<uint32_t> run_order;
};

// Execution options shared by both apply entry points. Defaults reproduce
// the historical serial behaviour.
struct RelocApplyOptions {
  ThreadPool* pool = nullptr;      // nullptr => single-threaded
  RelocScratch* scratch = nullptr;  // nullptr => per-call temporaries
};

// Applies plain KASLR relocations: every listed field is adjusted by
// `virt_delta` (added for abs64/abs32, subtracted for inverse32). 32-bit
// fields are checked against overflow out of the sign-extendable window.
Result<RelocStats> ApplyRelocations(LoadedImageView& view, const RelocInfo& relocs,
                                    uint64_t virt_delta, const RelocApplyOptions& options = {});

// FGKASLR-aware variant: in addition to `virt_delta`, both the *location* of
// each field (it may live inside a moved function) and the *value* it holds
// (it may point into a moved function) are adjusted through the shuffle map
// — the extra per-entry work the paper's §3.2 describes. Uses the batch
// strategy; results are bit-identical to the per-entry reference below.
Result<RelocStats> ApplyRelocationsShuffled(LoadedImageView& view, const RelocInfo& relocs,
                                            uint64_t virt_delta, const ShuffleMap& map,
                                            const RelocApplyOptions& options = {});

// The reference per-entry walk (one binary search per lookup, no batching,
// no sharding). Kept callable for equivalence tests and as the serial
// baseline in bench/micro_parallel.
Result<RelocStats> ApplyRelocationsShuffledPerEntry(LoadedImageView& view,
                                                    const RelocInfo& relocs, uint64_t virt_delta,
                                                    const ShuffleMap& map);

}  // namespace imk

#endif  // IMKASLR_SRC_KASLR_RELOCATOR_H_
