// imkmetrics unit drills: shard-merge correctness across threads, histogram
// bucket boundaries (Prometheus le semantics), a scrape-during-emit race
// drill (run under TSan in ci_check.sh's trace stage), idempotent
// registration, slab overflow fallback, and the Prometheus text exposition.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/trace/metrics.h"

namespace imk {
namespace trace {
namespace {

TEST(MetricsTest, CounterMergesAcrossThreadShards) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("boots_total");
  ASSERT_NE(counter, nullptr);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Inc();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  // One shard per touching thread was registered.
  EXPECT_EQ(registry.shard_count(), static_cast<size_t>(kThreads));
  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.counters.size(), 1u);
  EXPECT_EQ(snapshot.counters[0].first, "boots_total");
  EXPECT_EQ(snapshot.counters[0].second, static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsTest, GaugeIsAbsolute) {
  MetricsRegistry registry;
  Gauge* gauge = registry.gauge("pool_depth");
  ASSERT_NE(gauge, nullptr);
  gauge->Set(7);
  gauge->Add(-3);
  EXPECT_EQ(gauge->Value(), 4);
  gauge->Set(100);  // Set wins over accumulated state
  EXPECT_EQ(gauge->Value(), 100);
  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 100);
}

TEST(MetricsTest, HistogramBucketBoundariesAreLe) {
  MetricsRegistry registry;
  Histogram* histogram = registry.histogram("boot_ms", {1.0, 10.0, 100.0});
  ASSERT_NE(histogram, nullptr);
  // Exactly-on-bound lands in that bucket (le semantics); above the last
  // bound lands in +Inf.
  histogram->Observe(0.5);    // <= 1
  histogram->Observe(1.0);    // <= 1 (boundary)
  histogram->Observe(1.0001); // <= 10
  histogram->Observe(10.0);   // <= 10 (boundary)
  histogram->Observe(99.9);   // <= 100
  histogram->Observe(100.0);  // <= 100 (boundary)
  histogram->Observe(1e6);    // +Inf
  const MetricsSnapshot snapshot = registry.Scrape();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const HistogramSnapshot& h = snapshot.histograms[0];
  ASSERT_EQ(h.bucket_counts.size(), 4u);
  EXPECT_EQ(h.bucket_counts[0], 2u);
  EXPECT_EQ(h.bucket_counts[1], 2u);
  EXPECT_EQ(h.bucket_counts[2], 2u);
  EXPECT_EQ(h.bucket_counts[3], 1u);
  EXPECT_EQ(h.count, 7u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.0 + 1.0001 + 10.0 + 99.9 + 100.0 + 1e6);
  EXPECT_EQ(histogram->Count(), 7u);
}

TEST(MetricsTest, RegistrationIsIdempotentAndTypeChecked) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("x_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(registry.counter("x_total"), counter);  // same handle back
  // Same name, different type or bounds: rejected.
  EXPECT_EQ(registry.gauge("x_total"), nullptr);
  EXPECT_EQ(registry.histogram("x_total", {1.0}), nullptr);
  Histogram* histogram = registry.histogram("h", {1.0, 2.0});
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(registry.histogram("h", {1.0, 2.0}), histogram);
  EXPECT_EQ(registry.histogram("h", {1.0, 3.0}), nullptr);  // bounds mismatch
}

// Writers hammer a counter and a histogram while a scraper thread merges:
// Scrape() must only ever observe monotonically growing, uncorrupted
// tallies. TSan-clean (ci_check.sh trace stage).
TEST(MetricsTest, ScrapeDuringEmitIsSafe) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("ops_total");
  Histogram* histogram = registry.histogram("lat", {0.5});
  ASSERT_NE(counter, nullptr);
  ASSERT_NE(histogram, nullptr);
  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([counter, histogram] {
      for (int i = 0; i < kPerWriter; ++i) {
        counter->Inc();
        histogram->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  uint64_t last_count = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const MetricsSnapshot snapshot = registry.Scrape();
    ASSERT_EQ(snapshot.counters.size(), 1u);
    const uint64_t count = snapshot.counters[0].second;
    ASSERT_GE(count, last_count);  // counters only grow
    last_count = count;
    ASSERT_EQ(snapshot.histograms.size(), 1u);
    // Bucket sums never exceed the eventual total.
    ASSERT_LE(snapshot.histograms[0].count,
              static_cast<uint64_t>(kWriters) * kPerWriter);
    if (count == static_cast<uint64_t>(kWriters) * kPerWriter) {
      stop.store(true, std::memory_order_relaxed);
    }
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  const MetricsSnapshot final_snapshot = registry.Scrape();
  EXPECT_EQ(final_snapshot.counters[0].second,
            static_cast<uint64_t>(kWriters) * kPerWriter);
  const HistogramSnapshot& h = final_snapshot.histograms[0];
  EXPECT_EQ(h.count, static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(h.bucket_counts[0], h.bucket_counts[1]);  // even/odd split
}

TEST(MetricsTest, SlabOverflowFallsBackToGlobalCells) {
  MetricsRegistry registry;
  // Exhaust the per-thread slab; registration past it must still work via
  // the per-metric global cells (contended but correct).
  std::vector<Counter*> counters;
  for (uint32_t i = 0; i < MetricsRegistry::kShardSlots + 8; ++i) {
    Counter* counter = registry.counter("c" + std::to_string(i));
    ASSERT_NE(counter, nullptr);
    counters.push_back(counter);
  }
  Counter* overflowed = counters.back();
  overflowed->Inc(5);
  counters.front()->Inc(2);
  EXPECT_EQ(overflowed->Value(), 5u);
  EXPECT_EQ(counters.front()->Value(), 2u);
  const MetricsSnapshot snapshot = registry.Scrape();
  EXPECT_EQ(snapshot.counters.size(), counters.size());
}

TEST(MetricsTest, ResetZeroesEverythingHandlesSurvive) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("n_total");
  Gauge* gauge = registry.gauge("g");
  Histogram* histogram = registry.histogram("h", {1.0});
  counter->Inc(9);
  gauge->Set(-4);
  histogram->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), 0u);
  counter->Inc();  // handles stay live after Reset
  EXPECT_EQ(counter->Value(), 1u);
}

TEST(MetricsTest, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("imk_boots_total", "completed boots")->Inc(3);
  registry.gauge("imk_pool_depth", "ready layouts")->Set(12);
  Histogram* histogram =
      registry.histogram("imk_boot_ms", {1.0, 10.0}, "boot latency");
  histogram->Observe(0.5);
  histogram->Observe(5.0);
  histogram->Observe(50.0);
  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE imk_boots_total counter"), std::string::npos);
  EXPECT_NE(text.find("imk_boots_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE imk_pool_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("imk_pool_depth 12"), std::string::npos);
  EXPECT_NE(text.find("# TYPE imk_boot_ms histogram"), std::string::npos);
  // Cumulative buckets: le="10" counts the le="1" observations too.
  EXPECT_NE(text.find("imk_boot_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("imk_boot_ms_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("imk_boot_ms_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("imk_boot_ms_count 3"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryIsAProcessSingleton) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
  Counter* counter = a.counter("metrics_test_global_total");
  ASSERT_NE(counter, nullptr);
  const uint64_t before = counter->Value();
  counter->Inc();
  EXPECT_EQ(counter->Value(), before + 1);
}

}  // namespace
}  // namespace trace
}  // namespace imk
