// MemGovernor unit drills: per-category accounting and high-water marks,
// ScopedMemCharge RAII (including charges that outlive the governor), the
// priority-ordered reclamation ladder with its pressure-epoch bracket,
// hard-watermark admission gating, and the three synthetic fault points
// (mem.pressure_soft / mem.pressure_hard / mem.reclaim). Everything here is
// kernel-free: tiers are fakes, so the drills run in microseconds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/mem_accounting.h"
#include "src/vmm/mem_governor.h"

namespace imk {
namespace {

FaultPlan Plan(const char* spec, uint64_t seed = 1) {
  auto plan = FaultPlan::Parse(spec, seed);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// A reclaim tier holding `held` accounted bytes; ReclaimMemory sheds up to
// the asked amount and records the call order in a shared log.
class FakeTier : public Reclaimable {
 public:
  FakeTier(MemGovernor* governor, MemCategory category, const char* name)
      : governor_(governor), category_(category), name_(name) {}

  void Fill(uint64_t bytes) {
    held_ += bytes;
    governor_->Charge(category_, bytes);
  }

  uint64_t ReclaimMemory(uint64_t want_bytes) override {
    if (order != nullptr) {
      order->push_back(this);
    }
    const uint64_t shed = std::min(want_bytes, held_);
    held_ -= shed;
    governor_->Release(category_, shed);
    return shed;
  }
  void OnMemoryPressure(bool under_pressure) override {
    pressure_events.push_back(under_pressure);
  }
  const char* reclaim_name() const override { return name_; }

  uint64_t held() const { return held_; }

  std::vector<FakeTier*>* order = nullptr;
  std::vector<bool> pressure_events;

 private:
  MemGovernor* governor_;
  MemCategory category_;
  const char* name_;
  uint64_t held_ = 0;
};

// ---- accounting ----

TEST(MemGovernorTest, ChargeReleaseTracksCategoriesAndHighWater) {
  MemGovernor governor;
  governor.Charge(MemCategory::kGuestFrames, 1000);
  governor.Charge(MemCategory::kTemplateImages, 500);
  governor.Charge(MemCategory::kGuestFrames, 200);
  governor.Release(MemCategory::kGuestFrames, 700);

  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.current_total_bytes, 1000u);
  EXPECT_EQ(stats.high_water_total_bytes, 1700u);
  const auto& frames = stats.categories[static_cast<size_t>(MemCategory::kGuestFrames)];
  EXPECT_EQ(frames.current_bytes, 500u);
  EXPECT_EQ(frames.high_water_bytes, 1200u);
  const auto& templates = stats.categories[static_cast<size_t>(MemCategory::kTemplateImages)];
  EXPECT_EQ(templates.current_bytes, 500u);
  EXPECT_EQ(templates.high_water_bytes, 500u);
  // Unlimited budget: no watermarks, everything admits without counting
  // against a wait budget.
  EXPECT_EQ(stats.budget_bytes, 0u);
  EXPECT_TRUE(governor.Admit(1ull << 40, 0));
}

TEST(MemGovernorTest, ScopedChargeReleasesWithItsHolder) {
  MemGovernor governor;
  {
    ScopedMemCharge charge(governor.shared_accountant(MemCategory::kLayoutRenders), 4096);
    EXPECT_EQ(governor.current_total_bytes(), 4096u);
    ScopedMemCharge moved = std::move(charge);
    EXPECT_EQ(governor.current_total_bytes(), 4096u);  // move transfers, not doubles
    EXPECT_EQ(moved.bytes(), 4096u);
  }
  EXPECT_EQ(governor.current_total_bytes(), 0u);
  EXPECT_EQ(governor.stats().high_water_total_bytes, 4096u);
}

TEST(MemGovernorTest, ChargesOutliveTheGovernorSafely) {
  // A cache entry's charge can outlive the storm-scoped governor; releasing
  // it afterwards must be a no-op on a detached adapter, not a dangling call.
  std::optional<ScopedMemCharge> charge;
  std::shared_ptr<ByteAccountant> adapter;
  {
    MemGovernor governor;
    adapter = governor.shared_accountant(MemCategory::kTemplateImages);
    charge.emplace(adapter, 1 << 20);
    EXPECT_EQ(governor.current_total_bytes(), 1u << 20);
  }
  charge.reset();          // releases into the detached adapter: no-op
  adapter->Charge(123);    // so do late charges
  adapter->Release(123);
}

// ---- reclamation ladder ----

TEST(MemGovernorTest, LadderShedsInPriorityOrderUntilUnderSoft) {
  MemGovernorOptions options;
  options.budget_bytes = 1000;
  options.soft_pct = 0.5;  // soft = 500
  MemGovernor governor(options);

  std::vector<FakeTier*> order;
  FakeTier pool(&governor, MemCategory::kLayoutRenders, "pool");
  FakeTier decode(&governor, MemCategory::kDecodeTables, "decode");
  FakeTier templates(&governor, MemCategory::kTemplateImages, "templates");
  for (FakeTier* tier : {&pool, &decode, &templates}) {
    tier->order = &order;
    tier->Fill(300);
  }
  // Registration order is shuffled on purpose: priority, not registration,
  // decides the ladder order.
  governor.RegisterReclaimable(&templates, 2);
  governor.RegisterReclaimable(&pool, 0);
  governor.RegisterReclaimable(&decode, 1);

  EXPECT_EQ(governor.current_total_bytes(), 900u);
  const uint64_t shed = governor.MaybeReclaim();

  // 900 -> target 500: the pool tier sheds its 300, the decode tier the
  // remaining 100; the templates tier is never touched.
  EXPECT_EQ(shed, 400u);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], &pool);
  EXPECT_EQ(order[1], &decode);
  EXPECT_EQ(pool.held(), 0u);
  EXPECT_EQ(decode.held(), 200u);
  EXPECT_EQ(templates.held(), 300u);
  EXPECT_EQ(governor.current_total_bytes(), 500u);

  // The pressure epoch bracketed the run: every registered tier saw
  // OnMemoryPressure(true) then (false), shed or not.
  for (FakeTier* tier : {&pool, &decode, &templates}) {
    ASSERT_EQ(tier->pressure_events.size(), 2u) << tier->reclaim_name();
    EXPECT_TRUE(tier->pressure_events[0]);
    EXPECT_FALSE(tier->pressure_events[1]);
  }
  EXPECT_FALSE(governor.under_pressure());

  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.reclaim_runs, 1u);
  EXPECT_EQ(stats.tier_sheds, 2u);
  EXPECT_EQ(stats.reclaimed_bytes, 400u);

  // Back under soft: another pass is a no-op.
  EXPECT_EQ(governor.MaybeReclaim(), 0u);
  EXPECT_EQ(order.size(), 2u);

  governor.UnregisterReclaimable(&pool);
  governor.UnregisterReclaimable(&decode);
  governor.UnregisterReclaimable(&templates);
}

TEST(MemGovernorTest, ReclaimAllDrainsEveryTier) {
  MemGovernor governor;  // no budget: only the drill sheds
  FakeTier pool(&governor, MemCategory::kLayoutRenders, "pool");
  FakeTier templates(&governor, MemCategory::kTemplateImages, "templates");
  pool.Fill(700);
  templates.Fill(300);
  governor.RegisterReclaimable(&pool, 0);
  governor.RegisterReclaimable(&templates, 2);

  EXPECT_EQ(governor.ReclaimAll(), 1000u);
  EXPECT_EQ(pool.held(), 0u);
  EXPECT_EQ(templates.held(), 0u);
  EXPECT_EQ(governor.current_total_bytes(), 0u);

  governor.UnregisterReclaimable(&pool);
  governor.UnregisterReclaimable(&templates);
}

// ---- admission ----

TEST(MemGovernorTest, AdmitRejectsOverHardAndRecoversAfterRelease) {
  MemGovernorOptions options;
  options.budget_bytes = 1000;
  MemGovernor governor(options);

  // Pinned bytes no ladder can shed: admission must time out and reject.
  governor.Charge(MemCategory::kGuestFrames, 900);
  EXPECT_FALSE(governor.Admit(200, 1));
  EXPECT_EQ(governor.stats().admit_rejects, 1u);

  governor.Release(MemCategory::kGuestFrames, 500);
  EXPECT_TRUE(governor.Admit(200, 1));
  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.admits, 1u);
  EXPECT_EQ(stats.admit_rejects, 1u);
}

TEST(MemGovernorTest, AdmitReclaimsToMakeRoom) {
  MemGovernorOptions options;
  options.budget_bytes = 1000;  // soft = 750
  MemGovernor governor(options);
  FakeTier pool(&governor, MemCategory::kLayoutRenders, "pool");
  pool.Fill(900);
  governor.RegisterReclaimable(&pool, 0);

  // 900 + 200 would breach the hard watermark; the gate's own reclamation
  // pass makes the room, so the launch admits without waiting.
  EXPECT_TRUE(governor.Admit(200, 50));
  EXPECT_LE(governor.current_total_bytes() + 200, 1000u);
  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.admits, 1u);
  EXPECT_EQ(stats.admit_rejects, 0u);
  EXPECT_GE(stats.tier_sheds, 1u);

  governor.UnregisterReclaimable(&pool);
}

// ---- synthetic fault points ----

TEST(MemGovernorTest, SoftPressureFaultForcesAFullDrill) {
  MemGovernor governor;  // unlimited: only the fault can open an epoch
  FakeTier pool(&governor, MemCategory::kLayoutRenders, "pool");
  pool.Fill(512);
  governor.RegisterReclaimable(&pool, 0);

  EXPECT_EQ(governor.MaybeReclaim(), 0u);  // no budget, no fault: no-op
  {
    FaultScope faults(Plan("mem.pressure_soft:error:n=1:max=1"));
    // A forced epoch with no budget targets zero: the tier sheds dry.
    EXPECT_EQ(governor.MaybeReclaim(), 512u);
  }
  EXPECT_EQ(pool.held(), 0u);
  governor.UnregisterReclaimable(&pool);
}

TEST(MemGovernorTest, ReclaimFaultMisfiresOneTierAndTheLadderMovesOn) {
  MemGovernor governor;
  std::vector<FakeTier*> order;
  FakeTier pool(&governor, MemCategory::kLayoutRenders, "pool");
  FakeTier templates(&governor, MemCategory::kTemplateImages, "templates");
  pool.order = &order;
  templates.order = &order;
  pool.Fill(100);
  templates.Fill(100);
  governor.RegisterReclaimable(&pool, 0);
  governor.RegisterReclaimable(&templates, 2);

  FaultScope faults(Plan("mem.pressure_soft:error:n=1:max=1;mem.reclaim:error:n=1:max=1"));
  // The first tier misfires (shed skipped) and the ladder proceeds: only the
  // second tier sheds — degraded, not wedged.
  EXPECT_EQ(governor.MaybeReclaim(), 100u);
  EXPECT_EQ(pool.held(), 100u);
  EXPECT_EQ(templates.held(), 0u);
  ASSERT_EQ(order.size(), 1u);
  EXPECT_EQ(order[0], &templates);

  governor.UnregisterReclaimable(&pool);
  governor.UnregisterReclaimable(&templates);
}

TEST(MemGovernorTest, HardPressureFaultDeniesOneAdmissionPoll) {
  MemGovernor governor;  // unlimited: only the fault can deny
  {
    FaultScope faults(Plan("mem.pressure_hard:error:n=1:max=1"));
    EXPECT_FALSE(governor.Admit(0, 0));  // zero wait: one poll, one denial
    EXPECT_TRUE(governor.Admit(0, 0));   // the rule is spent
  }
  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.admit_rejects, 1u);
  EXPECT_EQ(stats.admits, 1u);
}

TEST(MemGovernorTest, CategoryNamesAreStable) {
  EXPECT_STREQ(MemCategoryName(MemCategory::kGuestFrames), "guest_frames");
  EXPECT_STREQ(MemCategoryName(MemCategory::kTemplateImages), "template_images");
  EXPECT_STREQ(MemCategoryName(MemCategory::kLayoutRenders), "layout_renders");
  EXPECT_STREQ(MemCategoryName(MemCategory::kDecodeTables), "decode_tables");
}

}  // namespace
}  // namespace imk
