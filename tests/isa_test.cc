// Unit tests for the VK64 assembler, interpreter, and i-cache model.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/isa/icache.h"
#include "src/isa/interpreter.h"
#include "src/isa/isa.h"

namespace imk {
namespace {

constexpr uint64_t kCodeVaddr = 0x10000;
constexpr uint64_t kRamSize = 1 << 20;

// Assembles `body`, loads at kCodeVaddr (identity-mapped RAM), runs it.
struct TestMachine {
  std::vector<uint8_t> ram;
  LinearMap map;

  TestMachine() : ram(kRamSize, 0) {
    map.virt_start = 0;
    map.phys_start = 0;
    map.size = kRamSize;
  }

  Result<RunResult> Run(Assembler& assembler) {
    Bytes code = assembler.TakeCode();
    std::copy(code.begin(), code.end(), ram.begin() + kCodeVaddr);
    interp = std::make_unique<Interpreter>(MutableByteSpan(ram), map);
    return interp->Run(kCodeVaddr, kRamSize - 16, 1 << 20);
  }

  std::unique_ptr<Interpreter> interp;
};

TEST(AssemblerTest, InstructionLengthsMatchEncoding) {
  Assembler a(0);
  a.Nop();
  EXPECT_EQ(a.size(), InstructionLength(static_cast<uint8_t>(Opcode::kNop)));
  a.LoadI(1, 99);
  a.Halt();
  EXPECT_EQ(a.size(), 1u + 10u + 1u);
}

TEST(AssemblerTest, RelocSitesRecorded) {
  Assembler a(0x1000);
  a.LoadA64(1, 0xffffffff81000000ull);
  a.LoadA32(2, 0xffffffff81000010ull);
  a.LoadNeg32(3, 12345);
  a.Call(0xffffffff81000020ull);
  ASSERT_EQ(a.relocs().size(), 4u);
  EXPECT_EQ(a.relocs()[0].reloc_class, RelocClass::kAbs64);
  EXPECT_EQ(a.relocs()[0].offset, 2u);
  EXPECT_EQ(a.relocs()[1].reloc_class, RelocClass::kAbs32);
  EXPECT_EQ(a.relocs()[2].reloc_class, RelocClass::kInverse32);
  EXPECT_EQ(a.relocs()[3].reloc_class, RelocClass::kAbs64);
}

TEST(InterpreterTest, AluAndHalt) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(0, 10);
  a.LoadI(1, 32);
  a.Add(0, 1);   // 42
  a.LoadI(2, 2);
  a.Mul(0, 2);   // 84
  a.AddI(0, -4);  // 80
  a.ShrI(0, 2);  // 20
  a.ShlI(0, 1);  // 40
  a.LoadI(3, 0xff);
  a.Xor(0, 3);   // 40 ^ 255 = 215
  a.AndI(0, 0xf0);  // 208
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reason, StopReason::kHalt);
  EXPECT_EQ(machine.interp->reg(0), 208u);
}

TEST(InterpreterTest, LoadStore) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, 0x8000);
  a.LoadI(2, 0xdeadbeefcafef00dull);
  a.St64(1, 2, 8);
  a.Ld64(3, 1, 8);
  a.LoadI(4, 0x42);
  a.St8(1, 4, 100);
  a.Ld8(5, 1, 100);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(3), 0xdeadbeefcafef00dull);
  EXPECT_EQ(machine.interp->reg(5), 0x42u);
}

TEST(InterpreterTest, BranchesAndLoop) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  // for (r0 = 0, r1 = 0; r0 < 10; ++r0) r1 += r0;  => r1 = 45
  a.LoadI(0, 0);
  a.LoadI(1, 0);
  a.LoadI(2, 10);
  auto loop = a.NewLabel();
  auto body = a.NewLabel();
  auto done = a.NewLabel();
  a.Bind(loop);
  a.Jlt(0, 2, body);
  a.Jmp(done);
  a.Bind(body);
  a.Add(1, 0);
  a.AddI(0, 1);
  a.Jmp(loop);
  a.Bind(done);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(1), 45u);
}

TEST(InterpreterTest, JzJnz) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(0, 0);
  a.LoadI(1, 5);
  auto skip1 = a.NewLabel();
  auto skip2 = a.NewLabel();
  a.Jz(0, skip1);
  a.LoadI(2, 111);  // must be skipped
  a.Bind(skip1);
  a.Jnz(1, skip2);
  a.LoadI(3, 222);  // must be skipped
  a.Bind(skip2);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(2), 0u);
  EXPECT_EQ(machine.interp->reg(3), 0u);
}

TEST(InterpreterTest, CallRetAndStack) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  auto over = a.NewLabel();
  a.LoadI(0, 1);
  // call the subroutine placed after HALT
  const uint64_t sub_vaddr = kCodeVaddr + 10 + 9 + 1;  // loadi + call + halt
  a.Call(sub_vaddr);
  a.Halt();
  // subroutine: r0 += 41; ret
  a.AddI(0, 41);
  a.Ret();
  a.Bind(over);  // silence unused label check by binding at end
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(machine.interp->reg(0), 42u);
}

TEST(InterpreterTest, IndirectCall) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  const uint64_t sub_vaddr = kCodeVaddr + 10 + 2 + 1;  // loadi + callr + halt
  a.LoadI(5, sub_vaddr);
  a.CallR(5);
  a.Halt();
  a.LoadI(0, 7);
  a.Ret();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(0), 7u);
}

TEST(InterpreterTest, PushPop) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, 11);
  a.LoadI(2, 22);
  a.Push(1);
  a.Push(2);
  a.Pop(3);  // 22
  a.Pop(4);  // 11
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(3), 22u);
  EXPECT_EQ(machine.interp->reg(4), 11u);
}

TEST(InterpreterTest, SignExtension32) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadA32(1, 0xffffffff81000000ull);  // low 32 bits 0x81000000, sign bit set
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(1), 0xffffffff81000000ull);
}

TEST(InterpreterTest, RdPc) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.Nop();
  a.RdPc(1);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(machine.interp->reg(1), kCodeVaddr + 1);
}

TEST(InterpreterTest, UnmappedAccessFaults) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, kRamSize + 4096);  // beyond the map
  a.Ld64(2, 1, 0);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kGuestFault);
}

TEST(InterpreterTest, InvalidOpcodeFaults) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.Halt();
  machine.ram[kCodeVaddr] = 0xfe;  // overwrite with invalid opcode
  Bytes code = a.TakeCode();
  machine.ram[kCodeVaddr] = 0xfe;
  Interpreter interp(MutableByteSpan(machine.ram), machine.map);
  auto result = interp.Run(kCodeVaddr, kRamSize - 16, 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kGuestFault);
}

TEST(InterpreterTest, InstructionCapStopsRunawayLoop) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  auto loop = a.NewLabel();
  a.Bind(loop);
  a.Jmp(loop);
  Bytes code = a.TakeCode();
  std::copy(code.begin(), code.end(), machine.ram.begin() + kCodeVaddr);
  Interpreter interp(MutableByteSpan(machine.ram), machine.map);
  auto result = interp.Run(kCodeVaddr, kRamSize - 16, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reason, StopReason::kInstructionCap);
  EXPECT_EQ(result->stats.instructions, 1000u);
}

TEST(InterpreterTest, PortIo) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, 0x1234);
  a.Out(kPortTestValue, 1);
  a.In(2, kPortTestValue);
  a.Halt();
  Bytes code = a.TakeCode();
  std::copy(code.begin(), code.end(), machine.ram.begin() + kCodeVaddr);
  Interpreter interp(MutableByteSpan(machine.ram), machine.map);
  uint64_t seen = 0;
  interp.set_port_handler([&](uint16_t port, bool is_write, uint64_t value) -> Result<uint64_t> {
    EXPECT_EQ(port, kPortTestValue);
    if (is_write) {
      seen = value;
      return 0;
    }
    return seen + 1;
  });
  auto result = interp.Run(kCodeVaddr, kRamSize - 16, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(seen, 0x1234u);
  EXPECT_EQ(interp.reg(2), 0x1235u);
}

TEST(InterpreterTest, ProbeFaultUsesExceptionTable) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, kRamSize * 2);        // unmapped
  const uint64_t probe_vaddr = kCodeVaddr + 10;
  a.Probe(2, 1, 0);
  a.LoadI(0, 0xbad);               // fall-through: must be skipped
  a.Halt();
  const uint64_t fixup_vaddr = kCodeVaddr + 10 + 7 + 10 + 1;
  a.LoadI(0, 0x900d);
  a.Halt();

  Bytes code = a.TakeCode();
  std::copy(code.begin(), code.end(), machine.ram.begin() + kCodeVaddr);
  // Exception table at phys 0x100: offsets relative to text base kCodeVaddr.
  StoreLe64(machine.ram.data() + 0x100, probe_vaddr - kCodeVaddr);
  StoreLe64(machine.ram.data() + 0x108, fixup_vaddr - kCodeVaddr);
  Interpreter interp(MutableByteSpan(machine.ram), machine.map);
  interp.SetExceptionTable(0x100, 1, kCodeVaddr);
  auto result = interp.Run(kCodeVaddr, kRamSize - 16, 1000);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(interp.reg(0), 0x900du);
  EXPECT_EQ(interp.reg(2), 0u);  // faulting probe loads zero
}

TEST(InterpreterTest, ProbeFaultWithoutTableFaults) {
  TestMachine machine;
  Assembler a(kCodeVaddr);
  a.LoadI(1, kRamSize * 2);
  a.Probe(2, 1, 0);
  a.Halt();
  auto result = machine.Run(a);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kGuestFault);
}

TEST(IcacheTest, HitsAfterFirstAccess) {
  IcacheModel icache((IcacheConfig()));
  EXPECT_FALSE(icache.Access(0x1000));
  EXPECT_TRUE(icache.Access(0x1000));
  EXPECT_TRUE(icache.Access(0x1030));  // same 64B line
  EXPECT_FALSE(icache.Access(0x1040));  // next line
  EXPECT_EQ(icache.misses(), 2u);
  EXPECT_EQ(icache.hits(), 2u);
}

TEST(IcacheTest, CapacityEviction) {
  IcacheConfig config;
  config.size_bytes = 1024;
  config.line_bytes = 64;
  config.ways = 2;  // 8 sets
  IcacheModel icache(config);
  // Touch 3 lines mapping to the same set (stride = sets * line = 512).
  EXPECT_FALSE(icache.Access(0));
  EXPECT_FALSE(icache.Access(512));
  EXPECT_FALSE(icache.Access(1024));  // evicts line 0 (LRU)
  EXPECT_FALSE(icache.Access(0));     // miss again
  EXPECT_TRUE(icache.Access(1024));   // still resident
}

TEST(IcacheTest, ResetClearsState) {
  IcacheModel icache((IcacheConfig()));
  icache.Access(0x40);
  icache.Reset();
  EXPECT_EQ(icache.accesses(), 0u);
  EXPECT_FALSE(icache.Access(0x40));
}

TEST(IcacheTest, ScatteredLayoutMissesMore) {
  // The Figure 11 mechanism in miniature: N small "functions" walked
  // repeatedly, contiguous vs scattered, under capacity pressure.
  IcacheConfig config;
  config.size_bytes = 4096;
  config.line_bytes = 64;
  config.ways = 4;
  auto run = [&](uint64_t stride) {
    IcacheModel icache(config);
    for (int round = 0; round < 50; ++round) {
      for (uint64_t fn = 0; fn < 96; ++fn) {
        icache.Access(fn * stride);
        icache.Access(fn * stride + 24);
      }
    }
    return icache.miss_rate();
  };
  const double contiguous = run(40);   // functions share lines
  const double scattered = run(4096 + 64);  // one line (and set pressure) each
  EXPECT_LT(contiguous, scattered);
}

}  // namespace
}  // namespace imk
