// Unit tests for the synthetic kernel builder, relocation info format, and
// the bzImage container.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kconfig.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/layout.h"
#include "src/kernel/relocs.h"

namespace imk {
namespace {

KernelBuildInfo Build(KernelProfile profile, RandoMode rando, double scale = 0.01) {
  auto info = BuildKernel(KernelConfig::Make(profile, rando, scale));
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  return std::move(*info);
}

TEST(KConfigTest, NamesAndScaling) {
  KernelConfig lupine = KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.5);
  EXPECT_EQ(lupine.Name(), "lupine-kaslr");
  KernelConfig aws = KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, 0.5);
  EXPECT_EQ(aws.Name(), "aws-fgkaslr");
  // Size ordering must match Table 1: lupine < aws < ubuntu.
  KernelConfig ubuntu = KernelConfig::Make(KernelProfile::kUbuntu, RandoMode::kNone, 0.5);
  EXPECT_LT(lupine.text_bytes, aws.text_bytes);
  EXPECT_LT(aws.text_bytes, ubuntu.text_bytes);
  // Scale halves sizes.
  KernelConfig small = KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, 0.25);
  EXPECT_EQ(small.text_bytes * 2, aws.text_bytes);
}

TEST(KernelBuilderTest, ProducesValidElf) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  ASSERT_TRUE(elf.ok()) << elf.status().ToString();
  EXPECT_EQ(elf->machine(), kEmVk64);
  EXPECT_EQ(elf->entry(), info.entry_vaddr);
  EXPECT_EQ(elf->program_headers().size(), 3u);  // RX, RO, RW
  EXPECT_EQ(info.text_vaddr, kLinkTextVaddr);
}

TEST(KernelBuilderTest, DeterministicForSeed) {
  KernelBuildInfo a = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  KernelBuildInfo b = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  EXPECT_EQ(a.vmlinux, b.vmlinux);
  EXPECT_EQ(a.expected_checksum, b.expected_checksum);
}

TEST(KernelBuilderTest, SeedChangesImage) {
  KernelConfig config = KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01);
  config.build_seed = 777;
  auto b = BuildKernel(config);
  ASSERT_TRUE(b.ok());
  KernelBuildInfo a = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  EXPECT_NE(a.vmlinux, b->vmlinux);
}

TEST(KernelBuilderTest, NokaslrHasNoRelocs) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kNone);
  EXPECT_TRUE(info.relocs.empty());
}

TEST(KernelBuilderTest, RelocsSortedAndInImage) {
  KernelBuildInfo info = Build(KernelProfile::kAws, RandoMode::kKaslr);
  ASSERT_FALSE(info.relocs.empty());
  for (const auto* list : {&info.relocs.abs64, &info.relocs.abs32, &info.relocs.inverse32}) {
    EXPECT_TRUE(std::is_sorted(list->begin(), list->end()));
    for (uint64_t vaddr : *list) {
      EXPECT_GE(vaddr, info.text_vaddr);
      EXPECT_LT(vaddr, info.image_end_vaddr);
    }
  }
  EXPECT_GT(info.relocs.abs64.size(), info.relocs.abs32.size());
  EXPECT_GT(info.relocs.abs32.size(), 0u);
  EXPECT_GT(info.relocs.inverse32.size(), 0u);
}

TEST(KernelBuilderTest, FgKaslrHasPerFunctionSections) {
  KernelBuildInfo fg = Build(KernelProfile::kLupine, RandoMode::kFgKaslr);
  auto elf = ElfReader::Parse(ByteSpan(fg.vmlinux));
  ASSERT_TRUE(elf.ok());
  size_t fn_sections = 0;
  for (const auto& section : elf->sections()) {
    if (section.name.rfind(".text.fn_", 0) == 0) {
      ++fn_sections;
      EXPECT_NE(section.header.sh_flags & kShfExecinstr, 0u);
      EXPECT_EQ(section.header.sh_size % 16, 0u);
    }
  }
  EXPECT_EQ(fn_sections, fg.functions.size());

  KernelBuildInfo plain = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  auto plain_elf = ElfReader::Parse(ByteSpan(plain.vmlinux));
  ASSERT_TRUE(plain_elf.ok());
  for (const auto& section : plain_elf->sections()) {
    EXPECT_NE(section.name.rfind(".text.fn_", 0), 0u) << section.name;
  }
}

TEST(KernelBuilderTest, FgKaslrHasMoreRelocsAndBiggerImage) {
  // Table 1: fgkaslr kernels are ~10% bigger with ~3x the relocation info.
  KernelBuildInfo plain = Build(KernelProfile::kAws, RandoMode::kKaslr);
  KernelBuildInfo fg = Build(KernelProfile::kAws, RandoMode::kFgKaslr);
  EXPECT_GT(fg.relocs.total(), plain.relocs.total() * 3 / 2);
  EXPECT_GT(fg.vmlinux.size(), plain.vmlinux.size());
}

TEST(KernelBuilderTest, TableLocatorSymbolsPresent) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kFgKaslr);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  ASSERT_TRUE(elf.ok());
  auto symbols = elf->ReadSymbols();
  ASSERT_TRUE(symbols.ok());
  bool kallsyms = false;
  bool ex_table = false;
  bool startup = false;
  for (const auto& symbol : *symbols) {
    if (symbol.name == "__kallsyms") {
      kallsyms = true;
      EXPECT_EQ(symbol.size / 16, info.kallsyms_count);
    }
    ex_table |= symbol.name == "__ex_table";
    if (symbol.name == "startup_64") {
      startup = true;
      EXPECT_EQ(symbol.value, info.entry_vaddr);
    }
  }
  EXPECT_TRUE(kallsyms);
  EXPECT_TRUE(ex_table);
  EXPECT_TRUE(startup);
}

TEST(KernelBuilderTest, FunctionsAreDisjointAndInText) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kFgKaslr);
  uint64_t prev_end = info.text_vaddr;
  for (const auto& fn : info.functions) {
    EXPECT_GE(fn.vaddr, prev_end);
    EXPECT_EQ(fn.vaddr % 16, 0u);
    prev_end = fn.vaddr + fn.size;
  }
  EXPECT_LE(prev_end, info.image_end_vaddr);
}

TEST(KernelBuilderTest, SizeProportionsTrackTable1) {
  // At equal scale, vmlinux sizes must rank lupine < aws < ubuntu with
  // roughly the paper's 20/39/45 proportions.
  KernelBuildInfo lupine = Build(KernelProfile::kLupine, RandoMode::kKaslr, 0.02);
  KernelBuildInfo aws = Build(KernelProfile::kAws, RandoMode::kKaslr, 0.02);
  KernelBuildInfo ubuntu = Build(KernelProfile::kUbuntu, RandoMode::kKaslr, 0.02);
  const double aws_over_lupine =
      static_cast<double>(aws.vmlinux.size()) / static_cast<double>(lupine.vmlinux.size());
  EXPECT_GT(aws_over_lupine, 1.4);
  EXPECT_LT(aws_over_lupine, 2.6);
  EXPECT_GT(ubuntu.vmlinux.size(), aws.vmlinux.size());
}

TEST(RelocsTest, ExtractFromElfMatchesBuilderOutput) {
  // Figure 8's alternative flow: the `relocs` tool derives vmlinux.relocs
  // from the ELF's .rela sections. Extraction must reproduce exactly what
  // the build emitted.
  KernelBuildInfo info = Build(KernelProfile::kAws, RandoMode::kFgKaslr);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  ASSERT_TRUE(elf.ok());
  auto extracted = ExtractRelocsFromElf(*elf);
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(extracted->abs64, info.relocs.abs64);
  EXPECT_EQ(extracted->abs32, info.relocs.abs32);
  EXPECT_EQ(extracted->inverse32, info.relocs.inverse32);
}

TEST(RelocsTest, NonRelocatableKernelHasNoRelaSections) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kNone);
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  ASSERT_TRUE(elf.ok());
  auto extracted = ExtractRelocsFromElf(*elf);
  ASSERT_TRUE(extracted.ok());
  EXPECT_TRUE(extracted->empty());
}

TEST(RelocsTest, SerializeParseRoundTrip) {
  RelocInfo relocs;
  relocs.abs64 = {kLinkTextVaddr + 0x10, kLinkTextVaddr + 0x100, kLinkTextVaddr + 0x1000};
  relocs.abs32 = {kLinkTextVaddr + 0x20};
  relocs.inverse32 = {kLinkTextVaddr + 0x30, kLinkTextVaddr + 0x40};
  Bytes blob = SerializeRelocs(relocs);
  EXPECT_EQ(blob.size(), relocs.SerializedSize());
  auto parsed = ParseRelocs(ByteSpan(blob));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->abs64, relocs.abs64);
  EXPECT_EQ(parsed->abs32, relocs.abs32);
  EXPECT_EQ(parsed->inverse32, relocs.inverse32);
}

TEST(RelocsTest, RejectsBadMagicAndCounts) {
  RelocInfo relocs;
  relocs.abs64 = {kLinkTextVaddr};
  Bytes blob = SerializeRelocs(relocs);
  Bytes bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(ParseRelocs(ByteSpan(bad_magic)).ok());
  Bytes bad_count = blob;
  StoreLe32(bad_count.data() + 12, 1000000);  // abs64 count
  EXPECT_FALSE(ParseRelocs(ByteSpan(bad_count)).ok());
}

TEST(BzImageTest, BuildSerializeParseRoundTrip) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  auto image = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "lz4", LoaderKind::kStandard);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  Bytes serialized = SerializeBzImage(*image);
  EXPECT_EQ(serialized.size(), image->TotalSize());

  auto header = ParseBzImageHeader(ByteSpan(serialized));
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->codec, "lz4");
  EXPECT_EQ(header->loader_kind, LoaderKind::kStandard);
  EXPECT_EQ(header->payload_raw_size, image->payload_raw_size);

  auto parsed = ParseBzImage(ByteSpan(serialized));
  ASSERT_TRUE(parsed.ok());
  auto payload = DecompressPayload(*parsed);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  EXPECT_EQ(payload->vmlinux, info.vmlinux);
  EXPECT_EQ(payload->relocs.abs64, info.relocs.abs64);
  EXPECT_EQ(payload->relocs.inverse32, info.relocs.inverse32);
}

TEST(BzImageTest, CompressionShrinksLz4Payload) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kKaslr, 0.02);
  auto lz4 = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "lz4", LoaderKind::kStandard);
  auto none = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "none", LoaderKind::kStandard);
  ASSERT_TRUE(lz4.ok());
  ASSERT_TRUE(none.ok());
  EXPECT_LT(lz4->TotalSize(), none->TotalSize());
  // Table 1: bzImage(none) is slightly larger than vmlinux (loader + relocs).
  EXPECT_GT(none->TotalSize(), info.vmlinux.size());
}

TEST(BzImageTest, CorruptPayloadFailsCrc) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  auto image = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "none", LoaderKind::kStandard);
  ASSERT_TRUE(image.ok());
  image->compressed_payload[image->compressed_payload.size() / 2] ^= 0x1;
  auto payload = DecompressPayload(*image);
  EXPECT_FALSE(payload.ok());
}

TEST(BzImageTest, HeaderRejectsTruncation) {
  KernelBuildInfo info = Build(KernelProfile::kLupine, RandoMode::kKaslr);
  auto image = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "lz4", LoaderKind::kStandard);
  ASSERT_TRUE(image.ok());
  Bytes serialized = SerializeBzImage(*image);
  serialized.resize(serialized.size() / 2);
  EXPECT_FALSE(ParseBzImageHeader(ByteSpan(serialized)).ok());
}

}  // namespace
}  // namespace imk
