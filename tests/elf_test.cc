// Unit tests for the ELF64 reader/writer/notes.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/elf/elf_note.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/elf/elf_writer.h"

namespace imk {
namespace {

Bytes FillPattern(size_t n, uint8_t start) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(start + i);
  }
  return data;
}

// Builds a small executable with text/rodata/data/bss and symbols.
Result<Bytes> BuildSample() {
  ElfWriter writer(kEmVk64, kEtExec);
  writer.set_entry(0x401000);

  SectionSpec text;
  text.name = ".text";
  text.flags = kShfAlloc | kShfExecinstr;
  text.addr = 0x401000;
  text.addralign = 4096;
  text.data = FillPattern(100, 1);
  const size_t text_index = writer.AddSection(std::move(text));

  SectionSpec rodata;
  rodata.name = ".rodata";
  rodata.flags = kShfAlloc;
  rodata.addr = 0x402000;
  rodata.addralign = 4096;
  rodata.data = FillPattern(64, 50);
  const size_t rodata_index = writer.AddSection(std::move(rodata));

  SectionSpec data;
  data.name = ".data";
  data.flags = kShfAlloc | kShfWrite;
  data.addr = 0x403000;
  data.addralign = 4096;
  data.data = FillPattern(32, 99);
  const size_t data_index = writer.AddSection(std::move(data));

  SectionSpec bss;
  bss.name = ".bss";
  bss.type = kShtNobits;
  bss.flags = kShfAlloc | kShfWrite;
  bss.addr = 0x404000;
  bss.addralign = 4096;
  bss.nobits_size = 4096;
  const size_t bss_index = writer.AddSection(std::move(bss));

  writer.AddLoadSegment({text_index}, kPfR | kPfX, 0x400000);
  writer.AddLoadSegment({rodata_index}, kPfR, 0x400000);
  writer.AddLoadSegment({data_index, bss_index}, kPfR | kPfW, 0x400000);

  writer.AddSymbol("main", 0x401000, 100, ElfStInfo(kStbGlobal, kSttFunc), 1);
  writer.AddSymbol("local_helper", 0x401010, 16, ElfStInfo(kStbLocal, kSttFunc), 1);
  return writer.Finish();
}

TEST(ElfWriterTest, RoundTripHeaders) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  auto reader = ElfReader::Parse(ByteSpan(*image));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();

  EXPECT_EQ(reader->entry(), 0x401000u);
  EXPECT_EQ(reader->machine(), kEmVk64);
  EXPECT_EQ(reader->program_headers().size(), 3u);
  // null + 4 sections + symtab + strtab + shstrtab
  EXPECT_EQ(reader->sections().size(), 8u);
}

TEST(ElfWriterTest, SegmentsCoverSections) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  auto reader = ElfReader::Parse(ByteSpan(*image));
  ASSERT_TRUE(reader.ok());

  const auto& phdrs = reader->program_headers();
  EXPECT_EQ(phdrs[0].p_vaddr, 0x401000u);
  EXPECT_EQ(phdrs[0].p_filesz, 100u);
  EXPECT_EQ(phdrs[0].p_paddr, 0x1000u);  // paddr_delta applied
  // data+bss segment: filesz only covers .data, memsz includes .bss.
  EXPECT_EQ(phdrs[2].p_vaddr, 0x403000u);
  EXPECT_EQ(phdrs[2].p_filesz, 32u);
  EXPECT_EQ(phdrs[2].p_memsz, 0x404000u + 4096 - 0x403000u);
}

TEST(ElfWriterTest, MemoryCongruentFileLayout) {
  // In-place execution (paper §3.3) requires file offsets to mirror memory
  // offsets across all PT_LOAD segments.
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  auto reader = ElfReader::Parse(ByteSpan(*image));
  ASSERT_TRUE(reader.ok());
  const auto& phdrs = reader->program_headers();
  const uint64_t delta0 = phdrs[0].p_offset - 0;  // relative to first vaddr
  for (const auto& phdr : phdrs) {
    EXPECT_EQ(phdr.p_offset - delta0, phdr.p_vaddr - phdrs[0].p_vaddr);
  }
}

TEST(ElfWriterTest, SectionDataRoundTrips) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  auto reader = ElfReader::Parse(ByteSpan(*image));
  ASSERT_TRUE(reader.ok());
  auto section = reader->FindSection(".rodata");
  ASSERT_TRUE(section.ok());
  auto data = reader->SectionData(**section);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(Bytes(data->begin(), data->end()), FillPattern(64, 50));
}

TEST(ElfWriterTest, SymbolsRoundTrip) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  auto reader = ElfReader::Parse(ByteSpan(*image));
  ASSERT_TRUE(reader.ok());
  auto symbols = reader->ReadSymbols();
  ASSERT_TRUE(symbols.ok()) << symbols.status().ToString();
  // Null symbol + 2 added.
  ASSERT_EQ(symbols->size(), 3u);
  // Locals sort before globals.
  EXPECT_EQ((*symbols)[1].name, "local_helper");
  EXPECT_EQ((*symbols)[2].name, "main");
  EXPECT_EQ((*symbols)[2].value, 0x401000u);
  EXPECT_EQ((*symbols)[2].size, 100u);
}

TEST(ElfReaderTest, RejectsBadMagic) {
  Bytes junk(128, 0);
  EXPECT_FALSE(ElfReader::Parse(ByteSpan(junk)).ok());
}

TEST(ElfReaderTest, RejectsTruncated) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  for (size_t cut : {10ul, 63ul, 100ul, image->size() / 2}) {
    auto reader = ElfReader::Parse(ByteSpan(image->data(), cut));
    EXPECT_FALSE(reader.ok()) << "cut=" << cut;
  }
}

TEST(ElfReaderTest, RejectsOutOfRangeSectionOffsets) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  // Corrupt the section header table offset.
  Bytes corrupt = *image;
  StoreLe64(corrupt.data() + offsetof(Elf64Ehdr, e_shoff), corrupt.size() + 1000);
  EXPECT_FALSE(ElfReader::Parse(ByteSpan(corrupt)).ok());
}

TEST(ElfReaderTest, FuzzDoesNotCrash) {
  auto image = BuildSample();
  ASSERT_TRUE(image.ok());
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes corrupt = *image;
    // Flip a handful of random bytes.
    for (int i = 0; i < 8; ++i) {
      corrupt[rng.NextBelow(corrupt.size())] = static_cast<uint8_t>(rng.Next());
    }
    auto reader = ElfReader::Parse(ByteSpan(corrupt));
    if (reader.ok()) {
      (void)reader->ReadSymbols();
      for (const auto& section : reader->sections()) {
        (void)reader->SectionData(section);
      }
    }
  }
}

TEST(ElfNoteTest, RoundTrip) {
  std::vector<ElfNote> notes;
  ElfNote pvh;
  pvh.name = kNoteNameXen;
  pvh.type = kNoteTypePvhEntry;
  pvh.desc = {1, 2, 3, 4, 5, 6, 7, 8};
  notes.push_back(pvh);

  KernelConstantsNote constants;
  constants.physical_start = 0x1000000;
  constants.physical_align = 0x200000;
  constants.start_kernel_map = 0xffffffff80000000ull;
  constants.kernel_image_size = 1ull << 30;
  ElfNote knote;
  knote.name = kNoteNameImk;
  knote.type = kNoteTypeKernelConstants;
  knote.desc = EncodeKernelConstants(constants);
  notes.push_back(knote);

  Bytes blob = BuildNoteSection(notes);
  auto parsed = ParseNoteSection(ByteSpan(blob));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].name, kNoteNameXen);
  EXPECT_EQ((*parsed)[0].type, kNoteTypePvhEntry);
  EXPECT_EQ((*parsed)[0].desc, pvh.desc);

  auto found = FindKernelConstants(*parsed);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->physical_start, constants.physical_start);
  EXPECT_EQ(found->physical_align, constants.physical_align);
  EXPECT_EQ(found->start_kernel_map, constants.start_kernel_map);
  EXPECT_EQ(found->kernel_image_size, constants.kernel_image_size);
}

TEST(ElfNoteTest, TruncatedNoteFails) {
  std::vector<ElfNote> notes = {{std::string("Xen"), 18, Bytes{1, 2, 3, 4}}};
  Bytes blob = BuildNoteSection(notes);
  blob.pop_back();
  blob.pop_back();
  EXPECT_FALSE(ParseNoteSection(ByteSpan(blob)).ok());
}

TEST(ElfWriterTest, RejectsOverlappingSegmentSections) {
  ElfWriter writer(kEmVk64, kEtExec);
  SectionSpec a;
  a.name = ".a";
  a.flags = kShfAlloc;
  a.addr = 0x1000;
  a.data = FillPattern(0x200, 0);
  const size_t ia = writer.AddSection(std::move(a));
  SectionSpec b;
  b.name = ".b";
  b.flags = kShfAlloc;
  b.addr = 0x1100;  // overlaps .a
  b.data = FillPattern(0x100, 0);
  const size_t ib = writer.AddSection(std::move(b));
  writer.AddLoadSegment({ia, ib}, kPfR, 0);
  EXPECT_FALSE(writer.Finish().ok());
}

}  // namespace
}  // namespace imk
