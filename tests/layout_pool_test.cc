// LayoutPool drills: one-shot handout and exhaustion fallback, determinism
// across pool depths, bit-identity of a pooled launch vs the inline pipeline
// under the same derived seed, corrupt-render quarantine, refill-error
// fallback, concurrent grabs racing background refill (the TSan/race-audit
// lane), and cross-VM layout uniqueness over a pooled boot storm.
#include "src/vmm/layout_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/rng.h"
#include "src/base/threadpool.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/relocs.h"
#include "src/verify/layout_uniqueness.h"
#include "src/vmm/boot_storm.h"
#include "src/vmm/guest_memory.h"
#include "src/vmm/image_template.h"
#include "src/vmm/loader.h"

namespace imk {
namespace {

constexpr double kScale = 0.008;
constexpr uint64_t kMem = 160ull << 20;

// Kernel + template shared across the suite (building is the slow part).
struct PoolFixture {
  KernelBuildInfo info;
  std::shared_ptr<const ImageTemplate> tmpl;
};

PoolFixture& GetFixture() {
  static PoolFixture* fixture = [] {
    auto* f = new PoolFixture();
    auto built =
        BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    f->info = std::move(*built);
    auto tmpl = BuildImageTemplate(ByteSpan(f->info.vmlinux), TemplateOptions{});
    EXPECT_TRUE(tmpl.ok()) << tmpl.status().ToString();
    f->tmpl = *tmpl;
    return f;
  }();
  return *fixture;
}

DirectBootParams FgParams() {
  DirectBootParams params;
  params.requested = RandoMode::kFgKaslr;
  return params;
}

FaultPlan Plan(const char* spec, uint64_t seed = 1) {
  auto plan = FaultPlan::Parse(spec, seed);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

uint64_t DigestOf(const LoadedKernel& loaded) {
  return loaded.fg.has_value() ? loaded.fg->map.PermutationDigest() : 0;
}

// ---- one-shot handout / exhaustion ----

TEST(LayoutPoolTest, OneShotHandoutThenExhaustionFallsBackInline) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  LayoutPoolOptions options;
  options.depth = 2;
  options.seed = 11;
  // No refill executor: once drained the pool stays drained, so boots 3 and 4
  // must fall back to the inline pipeline (and still randomize).
  LayoutPool pool(fx.tmpl, fx.info.relocs, params, kMem, options);
  ASSERT_TRUE(pool.Prefill(2).ok());

  DirectLoadResources resources;
  resources.layout_pool = &pool;
  std::set<std::pair<uint64_t, uint64_t>> layouts;
  for (int boot = 0; boot < 4; ++boot) {
    GuestMemory memory(kMem);
    Rng rng(1000 + boot);
    auto loaded =
        DirectLoadFromTemplate(memory, fx.tmpl, &fx.info.relocs, params, rng, resources);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->layout_pool_hit, boot < 2) << "boot " << boot;
    ASSERT_TRUE(loaded->fg.has_value());
    layouts.emplace(loaded->choice.virt_slide, DigestOf(*loaded));
  }
  // Pooled and fallback boots alike: four boots, four distinct layouts.
  EXPECT_EQ(layouts.size(), 4u);

  const LayoutPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.ready, 0u);
  EXPECT_EQ(stats.rendered, 2u);
}

// ---- determinism across depths ----

TEST(LayoutPoolTest, LayoutsDeterministicAcrossPoolDepths) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  LayoutPoolOptions shallow_opts;
  shallow_opts.depth = 2;
  shallow_opts.seed = 7;
  LayoutPoolOptions deep_opts;
  deep_opts.depth = 6;
  deep_opts.seed = 7;
  LayoutPool shallow(fx.tmpl, fx.info.relocs, params, kMem, shallow_opts);
  LayoutPool deep(fx.tmpl, fx.info.relocs, params, kMem, deep_opts);
  ASSERT_TRUE(shallow.Prefill(2).ok());
  ASSERT_TRUE(deep.Prefill(6).ok());

  for (uint64_t k = 0; k < 2; ++k) {
    auto a = shallow.TryGrab(fx.tmpl, params, kMem);
    auto b = deep.TryGrab(fx.tmpl, params, kMem);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    // Layout k depends only on (base seed, k) — never on pool depth.
    EXPECT_EQ(a->sequence, k);
    EXPECT_EQ(b->sequence, k);
    EXPECT_EQ(a->seed, LayoutPool::DeriveLayoutSeed(7, k));
    EXPECT_EQ(a->seed, b->seed);
    EXPECT_EQ(a->choice.virt_slide, b->choice.virt_slide);
    EXPECT_EQ(a->choice.phys_load_addr, b->choice.phys_load_addr);
    ASSERT_EQ(a->image.size(), b->image.size());
    EXPECT_EQ(std::memcmp(a->image.data(), b->image.data(), a->image.size()), 0);
  }
}

// ---- bit-identity vs the inline pipeline ----

TEST(LayoutPoolTest, PooledLaunchBitIdenticalToInlineWithDerivedSeed) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  LayoutPoolOptions options;
  options.depth = 1;
  options.seed = 21;
  LayoutPool pool(fx.tmpl, fx.info.relocs, params, kMem, options);
  ASSERT_TRUE(pool.Prefill(1).ok());

  DirectLoadResources pooled_resources;
  pooled_resources.layout_pool = &pool;
  GuestMemory pooled_mem(kMem);
  Rng pooled_rng(999);  // must stay untouched on a hit
  auto pooled = DirectLoadFromTemplate(pooled_mem, fx.tmpl, &fx.info.relocs, params, pooled_rng,
                                       pooled_resources);
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();
  ASSERT_TRUE(pooled->layout_pool_hit);

  // The inline pipeline, seeded with the pool's derived seed for sequence 0,
  // must produce the same randomized bytes in guest memory.
  GuestMemory inline_mem(kMem);
  Rng inline_rng(LayoutPool::DeriveLayoutSeed(21, 0));
  auto plain =
      DirectLoadFromTemplate(inline_mem, fx.tmpl, &fx.info.relocs, params, inline_rng);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_FALSE(plain->layout_pool_hit);

  EXPECT_EQ(pooled->choice.virt_slide, plain->choice.virt_slide);
  EXPECT_EQ(pooled->choice.phys_load_addr, plain->choice.phys_load_addr);
  EXPECT_EQ(pooled->entry_vaddr, plain->entry_vaddr);
  EXPECT_EQ(DigestOf(*pooled), DigestOf(*plain));
  ASSERT_EQ(pooled->image_mem_size, plain->image_mem_size);
  auto pooled_bytes = pooled_mem.CopyRange(pooled->choice.phys_load_addr, pooled->image_mem_size);
  auto plain_bytes = inline_mem.CopyRange(plain->choice.phys_load_addr, plain->image_mem_size);
  ASSERT_TRUE(pooled_bytes.ok());
  ASSERT_TRUE(plain_bytes.ok());
  EXPECT_EQ(std::memcmp(pooled_bytes->data(), plain_bytes->data(), pooled_bytes->size()), 0);
}

// ---- fault drills ----

TEST(LayoutPoolTest, CorruptRenderQuarantinedAtGrab) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  // First render silently corrupted after its CRCs are stamped; the grab-time
  // re-verification must catch it, quarantine it, and serve the next layout.
  FaultScope faults(Plan("pool.render:corrupt:n=1:max=1"));
  LayoutPoolOptions options;
  options.depth = 2;
  options.seed = 31;
  options.integrity = ImageTemplateCache::IntegrityMode::kFull;
  LayoutPool pool(fx.tmpl, fx.info.relocs, params, kMem, options);
  ASSERT_TRUE(pool.Prefill(2).ok());

  auto grabbed = pool.TryGrab(fx.tmpl, params, kMem);
  ASSERT_NE(grabbed, nullptr);
  EXPECT_EQ(grabbed->sequence, 1u);  // sequence 0 was the corrupted render

  const LayoutPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.quarantined, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.ready, 0u);
}

TEST(LayoutPoolTest, RefillErrorLeavesPoolShallowAndBootFallsBack) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  FaultScope faults(Plan("pool.refill:error"));  // every render fails
  LayoutPoolOptions options;
  options.depth = 2;
  options.seed = 41;
  LayoutPool pool(fx.tmpl, fx.info.relocs, params, kMem, options);
  EXPECT_FALSE(pool.Prefill(2).ok());
  EXPECT_EQ(pool.stats().ready, 0u);
  EXPECT_GE(pool.stats().refill_errors, 1u);

  // The drained pool must not block the launch: inline fallback still boots.
  DirectLoadResources resources;
  resources.layout_pool = &pool;
  GuestMemory memory(kMem);
  Rng rng(5);
  auto loaded = DirectLoadFromTemplate(memory, fx.tmpl, &fx.info.relocs, params, rng, resources);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->layout_pool_hit);
  ASSERT_TRUE(loaded->fg.has_value());
}

// ---- concurrency: grabs racing background refill ----

TEST(LayoutPoolTest, ConcurrentGrabsRaceRefillWithoutReuse) {
  PoolFixture& fx = GetFixture();
  const DirectBootParams params = FgParams();
  ThreadPool refill(2);  // outlives the pool (destruction order)
  LayoutPoolOptions options;
  options.depth = 4;
  options.refill_batch = 2;
  options.seed = 51;
  options.refill_pool = &refill;
  LayoutPool pool(fx.tmpl, fx.info.relocs, params, kMem, options);
  ASSERT_TRUE(pool.Prefill(4).ok());

  constexpr int kThreads = 4;
  constexpr int kGrabsPerThread = 6;
  std::vector<std::vector<uint64_t>> sequences(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int g = 0; g < kGrabsPerThread; ++g) {
        auto layout = pool.TryGrab(fx.tmpl, params, kMem);
        if (layout != nullptr) {
          sequences[t].push_back(layout->sequence);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  pool.WaitIdle();

  // The one-shot guarantee under contention: no sequence handed out twice.
  std::set<uint64_t> seen;
  uint64_t handed_out = 0;
  for (const std::vector<uint64_t>& grabbed : sequences) {
    for (uint64_t sequence : grabbed) {
      seen.insert(sequence);
      ++handed_out;
    }
  }
  EXPECT_EQ(seen.size(), handed_out);

  const LayoutPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, handed_out);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kGrabsPerThread);
  EXPECT_GE(stats.rendered, 5u);  // background refill replenished during the race
  EXPECT_EQ(stats.refill_errors, 0u);
}

// ---- cross-VM uniqueness over a pooled storm ----

TEST(LayoutPoolTest, PooledStormLayoutsAreUnique) {
  PoolFixture& fx = GetFixture();
  const Bytes relocs_blob = SerializeRelocs(fx.info.relocs);
  ImageTemplateCache cache;
  StormOptions options;
  options.vms = 12;
  options.threads = 3;
  options.rando = RandoMode::kFgKaslr;
  options.mem_size_bytes = kMem;
  options.expected_checksum = fx.info.expected_checksum;
  options.cache = &cache;
  options.launch_only = true;
  options.layout_pool_depth = options.vms;
  options.keep_layouts = true;
  auto stats = RunBootStorm(ByteSpan(fx.info.vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->layouts.size(), 12u);
  EXPECT_GT(stats->pool_hits, 0u);
  EXPECT_EQ(stats->pool_hits + stats->pool_misses, 12u);

  VerifyReport report = CheckLayoutUniqueness(stats->layouts);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.CountOf(Invariant::kDuplicateLayout), 0u);
}

// ---- duplicate detection (the checker itself) ----

TEST(LayoutPoolTest, UniquenessCheckerFlagsClonedLayouts) {
  std::vector<LayoutIdentity> layouts(3);
  layouts[0] = {0x1000000, 0x200000, 0xdeadbeef};
  layouts[1] = {0x2000000, 0x200000, 0xfeedface};
  layouts[2] = layouts[0];  // snapshot-clone twin: ASLR nullified
  VerifyReport report = CheckLayoutUniqueness(layouts);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.CountOf(Invariant::kDuplicateLayout), 1u);

  // Shared slide but distinct permutations: a warning, not an error.
  layouts[2] = {0x1000000, 0x200000, 0xabad1dea};
  report = CheckLayoutUniqueness(layouts);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.CountOf(Invariant::kDuplicateSlide), 1u);
}

}  // namespace
}  // namespace imk
