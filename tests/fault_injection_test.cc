// Deterministic fault injection: spec parsing, seed-reproducible fire
// schedules, trigger semantics (nth / probability / max_fires), the
// data-bearing Truncate/Corrupt points, and the disarmed fast path.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/fault_injection.h"

namespace imk {
namespace {

// Records which of `hits` consecutive hits of `point` fire an error rule.
std::vector<bool> FireSchedule(const FaultPlan& plan, const char* point, int hits) {
  FaultScope scope(plan);
  std::vector<bool> fired;
  fired.reserve(hits);
  for (int i = 0; i < hits; ++i) {
    fired.push_back(!FaultInjector::Instance().Check(point).ok());
  }
  return fired;
}

// ---- spec parsing ----

TEST(FaultPlanTest, ParsesFullGrammar) {
  auto plan = FaultPlan::Parse(
      "loader.reloc:error:n=2:max=1:code=parse_error;"
      "storage.read:short:p=0.25;"
      "template.cache_hit:corrupt:bytes=4;"
      "vcpu.enter:delay:us=500",
      7);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->seed, 7u);
  ASSERT_EQ(plan->rules.size(), 4u);

  EXPECT_EQ(plan->rules[0].point, "loader.reloc");
  EXPECT_EQ(plan->rules[0].flavor, FaultFlavor::kError);
  EXPECT_EQ(plan->rules[0].nth, 2u);
  EXPECT_EQ(plan->rules[0].max_fires, 1u);
  EXPECT_EQ(plan->rules[0].error, ErrorCode::kParseError);

  EXPECT_EQ(plan->rules[1].flavor, FaultFlavor::kShort);
  EXPECT_DOUBLE_EQ(plan->rules[1].probability, 0.25);

  EXPECT_EQ(plan->rules[2].flavor, FaultFlavor::kCorrupt);
  EXPECT_EQ(plan->rules[2].corrupt_bytes, 4u);

  EXPECT_EQ(plan->rules[3].flavor, FaultFlavor::kDelay);
  EXPECT_EQ(plan->rules[3].delay_us, 500u);
}

TEST(FaultPlanTest, EmptySpecIsAnEmptyPlan) {
  auto plan = FaultPlan::Parse("", 3);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("loader.reloc", 1).ok());               // no flavor
  EXPECT_FALSE(FaultPlan::Parse("loader.reloc:explode", 1).ok());       // bad flavor
  EXPECT_FALSE(FaultPlan::Parse("x:error:p=1.5", 1).ok());              // p out of range
  EXPECT_FALSE(FaultPlan::Parse("x:error:n=0", 1).ok());                // nth is 1-based
  EXPECT_FALSE(FaultPlan::Parse("x:error:frequency=2", 1).ok());        // unknown option
  EXPECT_FALSE(FaultPlan::Parse("x:error:code=NO_SUCH_CODE", 1).ok());  // bad code name
  EXPECT_FALSE(FaultPlan::Parse(":error", 1).ok());                     // empty point
}

TEST(FaultPlanTest, ErrorCodeNamesAreCaseInsensitive) {
  auto lower = ParseErrorCodeName("guest_fault");
  auto upper = ParseErrorCodeName("GUEST_FAULT");
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*lower, ErrorCode::kGuestFault);
  EXPECT_EQ(*upper, ErrorCode::kGuestFault);
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  auto plan = FaultPlan::Parse("a:error:n=3:max=1;b:short:p=0.5", 9);
  ASSERT_TRUE(plan.ok());
  auto reparsed = FaultPlan::Parse(plan->ToString(), plan->seed);
  ASSERT_TRUE(reparsed.ok()) << plan->ToString();
  ASSERT_EQ(reparsed->rules.size(), plan->rules.size());
  for (size_t i = 0; i < plan->rules.size(); ++i) {
    EXPECT_EQ(reparsed->rules[i].point, plan->rules[i].point);
    EXPECT_EQ(reparsed->rules[i].flavor, plan->rules[i].flavor);
    EXPECT_EQ(reparsed->rules[i].nth, plan->rules[i].nth);
    EXPECT_DOUBLE_EQ(reparsed->rules[i].probability, plan->rules[i].probability);
    EXPECT_EQ(reparsed->rules[i].max_fires, plan->rules[i].max_fires);
  }
}

// ---- trigger semantics ----

TEST(FaultInjectorTest, NthTriggerFiresExactlyOnce) {
  auto plan = FaultPlan::Parse("pt:error:n=3", 1);
  ASSERT_TRUE(plan.ok());
  const std::vector<bool> fired = FireSchedule(*plan, "pt", 6);
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST(FaultInjectorTest, MaxFiresCapsAnAlwaysFiringRule) {
  auto plan = FaultPlan::Parse("pt:error:max=2", 1);
  ASSERT_TRUE(plan.ok());
  const std::vector<bool> fired = FireSchedule(*plan, "pt", 5);
  EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false}));
}

TEST(FaultInjectorTest, ProbabilityScheduleReproducesFromSeed) {
  auto plan = FaultPlan::Parse("pt:error:p=0.5", 11);
  ASSERT_TRUE(plan.ok());
  const std::vector<bool> first = FireSchedule(*plan, "pt", 64);
  const std::vector<bool> second = FireSchedule(*plan, "pt", 64);
  EXPECT_EQ(first, second);

  // A p=0.5 rule over 64 hits fires somewhere strictly between never and
  // always (binomial tail odds ~2^-64 per side).
  int fires = 0;
  for (bool f : first) {
    fires += f ? 1 : 0;
  }
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);

  auto other = FaultPlan::Parse("pt:error:p=0.5", 12);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(FireSchedule(*other, "pt", 64), first);
}

TEST(FaultInjectorTest, PointsAreIndependentStreams) {
  auto plan = FaultPlan::Parse("a:error:n=1:max=1;b:error:n=2:max=1", 1);
  ASSERT_TRUE(plan.ok());
  FaultScope scope(*plan);
  auto& inj = FaultInjector::Instance();
  // Hits of `a` never advance `b`'s eligible-hit count.
  EXPECT_FALSE(inj.Check("a").ok());
  EXPECT_TRUE(inj.Check("b").ok());   // b hit 1 of 2
  EXPECT_TRUE(inj.Check("a").ok());   // a already spent
  EXPECT_FALSE(inj.Check("b").ok());  // b hit 2 fires
}

TEST(FaultInjectorTest, InjectedErrorCarriesConfiguredCodeAndPoint) {
  auto plan = FaultPlan::Parse("loader.parse:error:code=guest_fault", 1);
  ASSERT_TRUE(plan.ok());
  FaultScope scope(*plan);
  Status status = FaultInjector::Instance().Check("loader.parse");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kGuestFault);
  EXPECT_NE(status.message().find("loader.parse"), std::string::npos);
}

// ---- counters ----

TEST(FaultInjectorTest, CountersTrackHitsAndFires) {
  auto plan = FaultPlan::Parse("pt:error:n=2:max=1", 1);
  ASSERT_TRUE(plan.ok());
  FaultScope scope(*plan);
  auto& inj = FaultInjector::Instance();
  for (int i = 0; i < 5; ++i) {
    (void)inj.Check("pt");
    (void)inj.Check("unarmed.point");  // no rule -> not an eligible hit
  }
  EXPECT_EQ(inj.hits_total(), 5u);
  EXPECT_EQ(inj.fires_total(), 1u);
  auto counts = inj.Counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].point, "pt");
  EXPECT_EQ(counts[0].hits, 5u);
  EXPECT_EQ(counts[0].fires, 1u);
}

TEST(FaultInjectorTest, ArmResetsCounters) {
  auto plan = FaultPlan::Parse("pt:error:n=1:max=1", 1);
  ASSERT_TRUE(plan.ok());
  FaultScope scope(*plan);
  auto& inj = FaultInjector::Instance();
  EXPECT_FALSE(inj.Check("pt").ok());
  inj.Arm(*plan);  // re-arm: schedule starts over
  EXPECT_EQ(inj.hits_total(), 0u);
  EXPECT_FALSE(inj.Check("pt").ok());
}

// ---- data-bearing points ----

TEST(FaultInjectorTest, TruncateIsDeterministicAndShort) {
  auto plan = FaultPlan::Parse("io:short", 5);
  ASSERT_TRUE(plan.ok());
  std::vector<uint64_t> lens[2];
  for (auto& run : lens) {
    FaultScope scope(*plan);
    for (int i = 0; i < 8; ++i) {
      const uint64_t len = FaultInjector::Instance().Truncate("io", 1000);
      EXPECT_LT(len, 1000u);  // p=1: every hit truncates to [0, len)
      run.push_back(len);
    }
  }
  EXPECT_EQ(lens[0], lens[1]);
}

TEST(FaultInjectorTest, CorruptFlipsBytesDeterministically) {
  auto plan = FaultPlan::Parse("buf:corrupt:bytes=3", 5);
  ASSERT_TRUE(plan.ok());
  std::vector<uint8_t> runs[2];
  for (auto& out : runs) {
    out.assign(256, 0xaa);
    FaultScope scope(*plan);
    EXPECT_TRUE(FaultInjector::Instance().Corrupt("buf", out.data(), out.size()));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_NE(runs[0], std::vector<uint8_t>(256, 0xaa));
}

TEST(FaultInjectorTest, CheckIgnoresDataFlavorsAndTruncateIgnoresErrors) {
  auto plan = FaultPlan::Parse("pt:short;pt2:error", 1);
  ASSERT_TRUE(plan.ok());
  FaultScope scope(*plan);
  auto& inj = FaultInjector::Instance();
  // A short rule firing at an error/delay point injects nothing.
  EXPECT_TRUE(inj.Check("pt").ok());
  // An error rule firing at a data point leaves the length alone.
  EXPECT_EQ(inj.Truncate("pt2", 77), 77u);
}

// ---- disarmed fast path ----

TEST(FaultInjectorTest, DisarmedInjectorIsInert) {
  ASSERT_FALSE(FaultInjector::armed());
  auto& inj = FaultInjector::Instance();
  EXPECT_TRUE(inj.Check("anything").ok());
  EXPECT_EQ(inj.Truncate("anything", 42), 42u);
  uint8_t byte = 0x5c;
  EXPECT_FALSE(inj.Corrupt("anything", &byte, 1));
  EXPECT_EQ(byte, 0x5c);
}

TEST(FaultInjectorTest, FaultScopeDisarmsOnExit) {
  auto plan = FaultPlan::Parse("pt:error", 1);
  ASSERT_TRUE(plan.ok());
  {
    FaultScope scope(*plan);
    EXPECT_TRUE(FaultInjector::armed());
  }
  EXPECT_FALSE(FaultInjector::armed());
  EXPECT_TRUE(FaultInjector::Instance().Check("pt").ok());
}

TEST(FaultInjectorTest, ArmingAnEmptyPlanStaysDisarmed) {
  FaultScope scope(FaultPlan{});
  EXPECT_FALSE(FaultInjector::armed());
}

}  // namespace
}  // namespace imk
