// Tests for the imkrace concurrency audit (DESIGN.md §11): the rank table,
// the report, the detector — proven against seeded known-bad patterns both
// directly (drills) and through the boot-storm fault points — and the
// wrapper migration (an instrumented storm must come back clean).
//
// The Tracker is compiled in every build; only the *wrapper* hooks need
// IMK_RACE_AUDIT. Tests that rely on wrapper instrumentation skip
// themselves in passthrough builds — scripts/ci_check.sh's race-drill
// stage runs them for real.
#include <algorithm>
#include <set>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/base/fault_injection.h"
#include "src/base/frame_store.h"
#include "src/base/threadpool.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/relocs.h"
#include "src/race/drill.h"
#include "src/race/lock_ranks.h"
#include "src/race/mutex.h"
#include "src/race/report.h"
#include "src/race/tracker.h"
#include "src/vmm/boot_storm.h"

namespace imk {
namespace {

// ---- rank table ----

TEST(LockRankTest, TableIsStrictlyIncreasingAndComplete) {
  ASSERT_GT(race::kLockRankCount, 0u);
  uint32_t prev = 0;
  std::set<std::string> names;
  for (const race::LockRankInfo& info : race::kLockRankTable) {
    EXPECT_GT(race::LockRankValue(info.rank), prev)
        << "rank table must be sorted, strictly increasing, nonzero";
    prev = race::LockRankValue(info.rank);
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.guards, nullptr);
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate rank name " << info.name;
  }
}

TEST(LockRankTest, EveryDeclaredRankResolvesItsName) {
  for (const race::LockRankInfo& info : race::kLockRankTable) {
    EXPECT_STREQ(race::LockRankName(info.rank), info.name);
  }
  EXPECT_STREQ(race::LockRankName(race::LockRank::kUnranked), "unranked");
}

// ---- report ----

TEST(RaceReportTest, CleanReportSaysSo) {
  race::RaceReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.total_findings(), 0u);
  EXPECT_NE(report.ToString().find("CLEAN"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"clean\":true"), std::string::npos);
}

TEST(RaceReportTest, CountsAllButCapsRecording) {
  race::RaceReport report;
  for (int i = 0; i < 100; ++i) {
    report.Add({race::RaceKind::kRankInversion, "subject-" + std::to_string(i), "msg"});
  }
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.total_findings(), 100u);
  EXPECT_EQ(report.CountOf(race::RaceKind::kRankInversion), 100u);
  EXPECT_EQ(report.CountOf(race::RaceKind::kUnguardedWrite), 0u);
  EXPECT_EQ(report.findings().size(), race::RaceReport::kMaxRecordedPerKind);
  EXPECT_NE(report.ToString().find("more (recording capped)"), std::string::npos);
}

TEST(RaceReportTest, JsonCarriesFindingsCountsAndGraph) {
  race::RaceReport report;
  report.Add({race::RaceKind::kUnguardedWrite, "region \"x\"", "line1\nline2"});
  report.edges().push_back({"drill-outer", "drill-inner", 3});
  report.coverage().acquisitions = 7;
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"unguarded-write\":1"), std::string::npos);
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << "quotes must be escaped";
  EXPECT_NE(json.find("\\n"), std::string::npos) << "newlines must be escaped";
  EXPECT_NE(json.find("\"from\":\"drill-outer\""), std::string::npos);
  EXPECT_NE(json.find("\"acquisitions\":7"), std::string::npos);
}

// ---- detector: seeded lock-order inversion (direct drill) ----

TEST(RaceDetectorTest, CatchesSeededLockOrderInversion) {
  race::AuditScope audit;
  race::LockOrderInversionDrill();
  const race::RaceReport& report = audit.Finish();
  EXPECT_GE(report.CountOf(race::RaceKind::kRankInversion), 1u);
  EXPECT_GE(report.CountOf(race::RaceKind::kOrderCycle), 1u)
      << "both edge directions were recorded; the cycle must close";
  EXPECT_EQ(report.coverage().acquisitions, 4u);
  EXPECT_EQ(report.coverage().order_edges, 2u);
  // Both orders of the drill pair appear in the graph.
  std::set<std::string> edges;
  for (const race::OrderEdge& edge : report.edges()) {
    edges.insert(edge.from + ">" + edge.to);
  }
  EXPECT_TRUE(edges.count("drill-outer>drill-inner"));
  EXPECT_TRUE(edges.count("drill-inner>drill-outer"));
}

// ---- detector: seeded unguarded write (direct drill) ----

TEST(RaceDetectorTest, CatchesSeededUnguardedWrite) {
  race::AuditScope audit;
  race::UnguardedWriteDrill();
  const race::RaceReport& report = audit.Finish();
  EXPECT_GE(report.CountOf(race::RaceKind::kUnguardedWrite), 1u);
  ASSERT_FALSE(report.findings().empty());
  EXPECT_EQ(report.findings()[0].subject, "race.drill_word");
}

TEST(RaceDetectorTest, SingleThreadedAccessNeedsNoLock) {
  race::AuditScope audit;
  race::Tracker& tracker = race::Tracker::Instance();
  int word = 0;
  for (int i = 0; i < 10; ++i) {
    tracker.OnSharedAccess("test.exclusive", &word, 0, race::LockRank::kDrillOuter,
                           /*write=*/true);
  }
  const race::RaceReport& report = audit.Finish();
  EXPECT_EQ(report.CountOf(race::RaceKind::kUnguardedWrite), 0u)
      << "Eraser owner-thread exemption: exclusive access is never a race";
  EXPECT_EQ(report.coverage().accesses_checked, 10u);
}

TEST(RaceDetectorTest, CommonLockAcrossThreadsKeepsLocksetNonEmpty) {
  race::AuditScope audit;
  race::Tracker& tracker = race::Tracker::Instance();
  int word = 0;
  int guard = 0;  // any stable address works as a lock identity for the hooks
  const auto access = [&] {
    tracker.OnAcquire(&guard, race::LockRank::kDrillOuter);
    tracker.OnSharedAccess("test.guarded", &word, 0, race::LockRank::kDrillOuter,
                           /*write=*/true);
    tracker.OnRelease(&guard);
  };
  access();
  std::thread other([&] {
    access();
    access();
  });
  other.join();
  access();
  const race::RaceReport& report = audit.Finish();
  EXPECT_EQ(report.CountOf(race::RaceKind::kUnguardedWrite), 0u);
}

TEST(RaceDetectorTest, FlagsUnrankedLockAcquisition) {
  race::AuditScope audit;
  race::Tracker& tracker = race::Tracker::Instance();
  int lock = 0;
  tracker.OnAcquire(&lock, race::LockRank::kUnranked);
  tracker.OnRelease(&lock);
  const race::RaceReport& report = audit.Finish();
  EXPECT_EQ(report.CountOf(race::RaceKind::kUnrankedLock), 1u);
}

TEST(RaceDetectorTest, LegalNestingIsClean) {
  race::AuditScope audit;
  race::Tracker& tracker = race::Tracker::Instance();
  int outer = 0;
  int inner = 0;
  tracker.OnAcquire(&outer, race::LockRank::kDrillOuter);
  tracker.OnAcquire(&inner, race::LockRank::kDrillInner);
  tracker.OnRelease(&inner);
  tracker.OnRelease(&outer);
  const race::RaceReport& report = audit.Finish();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.coverage().order_edges, 1u);
}

// ---- fault-point registry ----

TEST(FaultRegistryTest, RegistryMatchesArmedDrillPoints) {
  const std::vector<std::string>& points = KnownFaultPoints();
  EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
  const std::set<std::string> set(points.begin(), points.end());
  EXPECT_EQ(set.size(), points.size()) << "no duplicates";
  // The drill triggers boot_storm checks must be registered, or arming them
  // from --faults would be the exact silent no-op the registry exists for.
  EXPECT_TRUE(set.count("race.order_drill"));
  EXPECT_TRUE(set.count("race.lockset_drill"));
  // Spot-check long-standing points.
  EXPECT_TRUE(set.count("storage.read"));
  EXPECT_TRUE(set.count("vcpu.enter"));
  EXPECT_TRUE(set.count("threadpool.chunk"));
}

// ---- wrappers ----

TEST(RaceMutexTest, WrappersSatisfyLockableAndCondVar) {
  race::Mutex mutex{race::LockRank::kDrillOuter};
  race::CondVar cv;
  bool ready = false;
  std::thread signaler([&] {
    std::lock_guard<race::Mutex> lock(mutex);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<race::Mutex> lock(mutex);
    cv.wait(lock, [&] { return ready; });
  }
  signaler.join();
  EXPECT_TRUE(ready);
  EXPECT_TRUE(mutex.try_lock());
  mutex.unlock();

  race::SharedMutex shared{race::LockRank::kDrillInner};
  shared.lock_shared();
  EXPECT_TRUE(shared.try_lock_shared());
  shared.unlock_shared();
  shared.unlock_shared();
  shared.lock();
  shared.unlock();
}

TEST(RaceMutexTest, InstrumentedWrapperFeedsTracker) {
  if (!race::AuditCompiledIn()) {
    GTEST_SKIP() << "wrappers are passthrough without IMK_RACE_AUDIT";
  }
  race::AuditScope audit;
  {
    race::Mutex outer{race::LockRank::kDrillOuter};
    race::Mutex inner{race::LockRank::kDrillInner};
    std::lock_guard<race::Mutex> lock_outer(outer);
    std::lock_guard<race::Mutex> lock_inner(inner);
  }
  const race::RaceReport& report = audit.Finish();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.coverage().acquisitions, 2u);
  EXPECT_TRUE(report.coverage().instrumented);
}

// ---- seeded drills through the storm fault points ----

StormOptions SmallStorm() {
  StormOptions options;
  options.vms = 4;
  options.threads = 2;
  options.mem_size_bytes = 64ull << 20;
  options.rando = RandoMode::kNone;
  options.launch_only = true;
  options.warmup_per_thread = 0;
  return options;
}

Bytes TinyKernel() {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kNone, 0.02));
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  return info->vmlinux;
}

TEST(RaceStormDrillTest, OrderDrillFaultPointSurfacesInStormAudit) {
  Bytes vmlinux = TinyKernel();
  auto plan = FaultPlan::Parse("race.order_drill:error:n=1", 7);
  ASSERT_TRUE(plan.ok());
  race::AuditScope audit;
  FaultScope faults(*plan);
  auto stats = RunBootStorm(ByteSpan(vmlinux), ByteSpan(), SmallStorm());
  const race::RaceReport& report = audit.Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(report.CountOf(race::RaceKind::kRankInversion), 1u) << report.ToString();
  EXPECT_GE(report.CountOf(race::RaceKind::kOrderCycle), 1u);
}

TEST(RaceStormDrillTest, LocksetDrillFaultPointSurfacesInStormAudit) {
  Bytes vmlinux = TinyKernel();
  auto plan = FaultPlan::Parse("race.lockset_drill:error:n=1", 7);
  ASSERT_TRUE(plan.ok());
  race::AuditScope audit;
  FaultScope faults(*plan);
  auto stats = RunBootStorm(ByteSpan(vmlinux), ByteSpan(), SmallStorm());
  const race::RaceReport& report = audit.Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GE(report.CountOf(race::RaceKind::kUnguardedWrite), 1u) << report.ToString();
}

// ---- the product is clean under instrumentation ----

TEST(RaceAuditCleanTest, InstrumentedConcurrentStormIsClean) {
  if (!race::AuditCompiledIn()) {
    GTEST_SKIP() << "needs -DIMK_RACE_AUDIT=ON to observe the product's locks";
  }
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, 0.02));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  Bytes relocs_blob = SerializeRelocs(info->relocs);
  StormOptions options;
  options.vms = 8;
  options.threads = 4;
  options.load_threads = 2;
  options.mem_size_bytes = 192ull << 20;
  options.rando = RandoMode::kKaslr;
  race::AuditScope audit;
  auto stats = RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  const race::RaceReport& report = audit.Finish();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.coverage().acquisitions, 0u) << "the audit must have observed the storm";
  EXPECT_GT(report.coverage().accesses_checked, 0u);
  EXPECT_TRUE(report.coverage().instrumented);
}

TEST(RaceAuditCleanTest, InstrumentedFrameStoreAndPoolAreClean) {
  if (!race::AuditCompiledIn()) {
    GTEST_SKIP() << "needs -DIMK_RACE_AUDIT=ON to observe the product's locks";
  }
  race::AuditScope audit;
  {
    FrameStore store(8ull << 20);
    ThreadPool pool(4);
    pool.ParallelFor(store.size() / FrameStore::kFrameBytes, [&](uint64_t begin, uint64_t end) {
      for (uint64_t frame = begin; frame < end; ++frame) {
        auto ptr = store.WritablePtr(frame * FrameStore::kFrameBytes, FrameStore::kFrameBytes);
        ASSERT_TRUE(ptr.ok());
        (*ptr)[0] = static_cast<uint8_t>(frame);
      }
    });
    EXPECT_EQ(store.dirty_frames(), store.frame_count());
  }
  const race::RaceReport& report = audit.Finish();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.coverage().acquisitions, 0u);
}

}  // namespace
}  // namespace imk
