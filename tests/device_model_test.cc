// Device model and firmware tests for the monitor profiles.
#include <gtest/gtest.h>

#include "src/vmm/device_model.h"
#include "src/vmm/firmware.h"

namespace imk {
namespace {

TEST(DeviceModelTest, FirecrackerBoardIsMinimal) {
  GuestMemory memory(128ull << 20);
  auto model = DeviceModel::Create(memory, DeviceModelConfig::Firecracker());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->devices().size(), 4u);
  EXPECT_LT(model->total_queue_bytes(), 128u * 1024);
  EXPECT_GT(model->reserved_floor_phys(), (127ull << 20));
}

TEST(DeviceModelTest, QemuBoardIsMuchLarger) {
  GuestMemory memory(128ull << 20);
  auto fc = DeviceModel::Create(memory, DeviceModelConfig::Firecracker());
  auto qemu = DeviceModel::Create(memory, DeviceModelConfig::QemuLike());
  ASSERT_TRUE(fc.ok());
  ASSERT_TRUE(qemu.ok());
  EXPECT_GT(qemu->devices().size(), fc->devices().size() * 5);
  EXPECT_GT(qemu->total_queue_bytes(), fc->total_queue_bytes() * 10);
}

TEST(DeviceModelTest, QueuesAreDisjointAndZeroed) {
  GuestMemory memory(128ull << 20);
  // Dirty the top of RAM first.
  ASSERT_TRUE(memory.Write(memory.size() - 4096, Bytes(4096, 0xaa)).ok());
  auto model = DeviceModel::Create(memory, DeviceModelConfig::QemuLike());
  ASSERT_TRUE(model.ok());
  uint64_t prev_start = memory.size();
  for (const auto& device : model->devices()) {
    EXPECT_EQ(device.queue_phys + device.queue_bytes, prev_start) << device.name;
    prev_start = device.queue_phys;
    auto ring = memory.Slice(device.queue_phys, device.queue_bytes);
    ASSERT_TRUE(ring.ok());
    for (uint8_t byte : *ring) {
      ASSERT_EQ(byte, 0);
    }
    EXPECT_EQ(LoadLe32(device.config_space.data()), device.device_id);
  }
}

TEST(DeviceModelTest, TinyGuestRejected) {
  GuestMemory memory(8ull << 20);
  auto model = DeviceModel::Create(memory, DeviceModelConfig::QemuLike());
  EXPECT_FALSE(model.ok());
}

TEST(FirmwareTest, PostRunsAndSignsCompletion) {
  GuestMemory memory(64ull << 20);
  auto report = RunFirmwarePost(memory, 100);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->instructions, 1000u);
  auto sig = memory.Slice(0x9fc00, 8);
  ASSERT_TRUE(sig.ok());
  EXPECT_EQ(LoadLe64(sig->data()), 0x424950534f455321ull);
}

TEST(FirmwareTest, WorkScalesWithIterations) {
  GuestMemory memory(64ull << 20);
  auto small = RunFirmwarePost(memory, 10);
  auto big = RunFirmwarePost(memory, 1000);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(big.ok());
  EXPECT_GT(big->instructions, small->instructions * 10);
}

}  // namespace
}  // namespace imk
