// Snapshot / zygote tests (paper §7): restored clones inherit the snapshot's
// layout — sharing memory but also sharing randomization, the ASLR-
// nullifying property the paper contrasts with fast fresh boots.
#include <gtest/gtest.h>

#include "src/kaslr/page_sharing.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr uint64_t kMem = 128ull << 20;

struct Fixture {
  KernelBuildInfo info;
  Storage storage;

  Fixture() {
    auto built =
        BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kFgKaslr, 0.01));
    EXPECT_TRUE(built.ok());
    info = std::move(*built);
    storage.Put("vmlinux", info.vmlinux);
    storage.Put("vmlinux.relocs", SerializeRelocs(info.relocs));
  }

  MicroVmConfig Config(uint64_t seed) const {
    MicroVmConfig config;
    config.mem_size_bytes = kMem;
    config.kernel_image = "vmlinux";
    config.relocs_image = "vmlinux.relocs";
    config.rando = RandoMode::kFgKaslr;
    config.seed = seed;
    return config;
  }
};

TEST(SnapshotTest, SnapshotBeforeBootFails) {
  Fixture fixture;
  MicroVm vm(fixture.storage, fixture.Config(1));
  EXPECT_FALSE(vm.Snapshot().ok());
}

TEST(SnapshotTest, CloneRunsGuestCodeWithParentLayout) {
  Fixture fixture;
  MicroVm parent(fixture.storage, fixture.Config(2));
  auto report = parent.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->init_done);

  auto snapshot = parent.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto clone = MicroVm::FromSnapshot(fixture.storage, *snapshot);
  ASSERT_TRUE(clone.ok());

  // The clone resolves kernel symbols with the parent's slide.
  EXPECT_EQ((*clone)->RuntimeAddr(fixture.info.text_vaddr),
            parent.RuntimeAddr(fixture.info.text_vaddr));
  auto outcome =
      (*clone)->CallGuest(fixture.info.selftest_entry_vaddr, 0, 0, 1ull << 28);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->r0, fixture.info.indirect_hashes[0]);
}

TEST(SnapshotTest, ClonesShareAllKernelPages) {
  Fixture fixture;
  MicroVm parent(fixture.storage, fixture.Config(3));
  ASSERT_TRUE(parent.Boot().ok());
  auto snapshot = parent.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  auto clone_a = MicroVm::FromSnapshot(fixture.storage, *snapshot);
  auto clone_b = MicroVm::FromSnapshot(fixture.storage, *snapshot);
  ASSERT_TRUE(clone_a.ok());
  ASSERT_TRUE(clone_b.ok());
  auto region_a = (*clone_a)->KernelRegion();
  auto region_b = (*clone_b)->KernelRegion();
  ASSERT_TRUE(region_a.ok());
  ASSERT_TRUE(region_b.ok());
  const PageSharingReport report = ComparePages(*region_a, *region_b);
  EXPECT_EQ(report.sharable_pages + report.zero_pages_b, report.pages_b)
      << "zygote clones must be fully mergeable";
}

TEST(SnapshotTest, FreshBootsDoNotShareLayout) {
  Fixture fixture;
  MicroVm vm_a(fixture.storage, fixture.Config(4));
  MicroVm vm_b(fixture.storage, fixture.Config(5));
  auto report_a = vm_a.Boot();
  auto report_b = vm_b.Boot();
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());
  EXPECT_NE(report_a->choice.virt_slide, report_b->choice.virt_slide);

  auto region_a = vm_a.KernelRegion();
  auto region_b = vm_b.KernelRegion();
  ASSERT_TRUE(region_a.ok());
  ASSERT_TRUE(region_b.ok());
  const PageSharingReport report = ComparePages(*region_a, *region_b);
  // FGKASLR instances with different seeds share almost no text/data pages.
  EXPECT_LT(report.SharableFraction(), 0.35)
      << "fresh FGKASLR boots should be largely unmergeable (paper 6)";
}

TEST(SnapshotTest, SameSeedBootsShareLayout) {
  // The paper's 6 proposal: the host picks one seed for a group of related
  // VMs, trading entropy across the group for memory density.
  Fixture fixture;
  MicroVm vm_a(fixture.storage, fixture.Config(6));
  MicroVm vm_b(fixture.storage, fixture.Config(6));
  ASSERT_TRUE(vm_a.Boot().ok());
  ASSERT_TRUE(vm_b.Boot().ok());
  auto region_a = vm_a.KernelRegion();
  auto region_b = vm_b.KernelRegion();
  ASSERT_TRUE(region_a.ok());
  ASSERT_TRUE(region_b.ok());
  const PageSharingReport report = ComparePages(*region_a, *region_b);
  EXPECT_GT(report.SharableFraction(), 0.99);
}

}  // namespace
}  // namespace imk
