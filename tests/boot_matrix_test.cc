// Parameterized boot matrix: every (profile x randomization x boot method)
// combination must boot to a verified checksum. This is the repo's broadest
// end-to-end sweep; kernels are built once per (profile, rando) and shared.
#include <map>

#include <gtest/gtest.h>

#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/trace/trace.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr double kScale = 0.008;
constexpr uint64_t kMem = 160ull << 20;

enum class Method {
  kDirect,
  kDirectPvh,
  kBzLz4,
  kBzGzip,
  kBzNone,
  kBzNoneOptimized,
};

const char* MethodName(Method method) {
  switch (method) {
    case Method::kDirect:
      return "direct";
    case Method::kDirectPvh:
      return "direct_pvh";
    case Method::kBzLz4:
      return "bz_lz4";
    case Method::kBzGzip:
      return "bz_gzip";
    case Method::kBzNone:
      return "bz_none";
    case Method::kBzNoneOptimized:
      return "bz_none_opt";
  }
  return "?";
}

struct MatrixCase {
  KernelProfile profile;
  RandoMode rando;
  Method method;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(KernelProfileName(info.param.profile)) + "_" +
         RandoModeName(info.param.rando) + "_" + MethodName(info.param.method);
}

// Kernel cache shared across the whole matrix.
struct BuiltKernel {
  KernelBuildInfo info;
  Storage storage;
};

BuiltKernel& GetKernel(KernelProfile profile, RandoMode rando) {
  static std::map<std::pair<int, int>, BuiltKernel>* cache =
      new std::map<std::pair<int, int>, BuiltKernel>();
  auto key = std::make_pair(static_cast<int>(profile), static_cast<int>(rando));
  auto it = cache->find(key);
  if (it != cache->end()) {
    return it->second;
  }
  BuiltKernel& built = (*cache)[key];
  auto result = BuildKernel(KernelConfig::Make(profile, rando, kScale));
  EXPECT_TRUE(result.ok());
  built.info = std::move(*result);
  built.storage.Put("vmlinux", built.info.vmlinux);
  if (!built.info.relocs.empty()) {
    built.storage.Put("vmlinux.relocs", SerializeRelocs(built.info.relocs));
  }
  for (const char* codec : {"lz4", "gzip", "none"}) {
    auto image = BuildBzImage(ByteSpan(built.info.vmlinux), built.info.relocs, codec,
                              LoaderKind::kStandard);
    EXPECT_TRUE(image.ok());
    built.storage.Put(std::string("bz-") + codec, SerializeBzImage(*image));
  }
  auto opt = BuildBzImage(ByteSpan(built.info.vmlinux), built.info.relocs, "none",
                          LoaderKind::kNoneOptimized);
  EXPECT_TRUE(opt.ok());
  built.storage.Put("bz-none-opt", SerializeBzImage(*opt));
  return built;
}

class BootMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(BootMatrixTest, BootsWithVerifiedChecksum) {
  const MatrixCase& param = GetParam();
  BuiltKernel& kernel = GetKernel(param.profile, param.rando);

  MicroVmConfig config;
  config.mem_size_bytes = kMem;
  config.rando = param.rando;
  config.seed = 1234;
  switch (param.method) {
    case Method::kDirect:
    case Method::kDirectPvh:
      config.kernel_image = "vmlinux";
      config.boot_mode = BootMode::kDirect;
      if (param.rando != RandoMode::kNone) {
        config.relocs_image = "vmlinux.relocs";
      }
      config.protocol =
          param.method == Method::kDirectPvh ? BootProtocol::kPvh : BootProtocol::kLinux64;
      break;
    case Method::kBzLz4:
      config.kernel_image = "bz-lz4";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzGzip:
      config.kernel_image = "bz-gzip";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzNone:
      config.kernel_image = "bz-none";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzNoneOptimized:
      config.kernel_image = "bz-none-opt";
      config.boot_mode = BootMode::kBzImage;
      break;
  }

  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  if (param.rando != RandoMode::kNone) {
    EXPECT_GT(report->reloc_stats.total(), 0u);
  }
  if (param.rando == RandoMode::kFgKaslr) {
    EXPECT_GT(report->sections_shuffled, 10u);
  }
}

// The block-cache engine must be architecturally invisible: every matrix
// case boots twice — legacy switch loop vs predecoded blocks — and the two
// runs must agree bit for bit on guest-visible outcome: init checksum,
// console transcript, retired instruction count, stop reason, and the final
// bytes of the kernel image window.
TEST_P(BootMatrixTest, BlockCacheEngineIsBitIdentical) {
  const MatrixCase& param = GetParam();
  BuiltKernel& kernel = GetKernel(param.profile, param.rando);

  MicroVmConfig config;
  config.mem_size_bytes = kMem;
  config.rando = param.rando;
  config.seed = 1234;
  switch (param.method) {
    case Method::kDirect:
    case Method::kDirectPvh:
      config.kernel_image = "vmlinux";
      config.boot_mode = BootMode::kDirect;
      if (param.rando != RandoMode::kNone) {
        config.relocs_image = "vmlinux.relocs";
      }
      config.protocol =
          param.method == Method::kDirectPvh ? BootProtocol::kPvh : BootProtocol::kLinux64;
      break;
    case Method::kBzLz4:
      config.kernel_image = "bz-lz4";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzGzip:
      config.kernel_image = "bz-gzip";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzNone:
      config.kernel_image = "bz-none";
      config.boot_mode = BootMode::kBzImage;
      break;
    case Method::kBzNoneOptimized:
      config.kernel_image = "bz-none-opt";
      config.boot_mode = BootMode::kBzImage;
      break;
  }

  config.use_block_cache = false;
  MicroVm legacy_vm(kernel.storage, config);
  auto legacy = legacy_vm.Boot();
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  auto legacy_region = legacy_vm.KernelRegion();
  ASSERT_TRUE(legacy_region.ok());

  config.use_block_cache = true;
  MicroVm block_vm(kernel.storage, config);
  auto block = block_vm.Boot();
  ASSERT_TRUE(block.ok()) << block.status().ToString();
  auto block_region = block_vm.KernelRegion();
  ASSERT_TRUE(block_region.ok());

  EXPECT_EQ(legacy->init_done, block->init_done);
  EXPECT_EQ(legacy->init_checksum, block->init_checksum);
  EXPECT_EQ(legacy->console, block->console);
  EXPECT_EQ(legacy->guest_stop, block->guest_stop);
  EXPECT_EQ(legacy->guest_stats.instructions, block->guest_stats.instructions);
  EXPECT_EQ(*legacy_region, *block_region);
  // The engines tell the truth about which one ran.
  EXPECT_EQ(legacy->guest_stats.block_cache_hits + legacy->guest_stats.block_cache_misses, 0u);
  EXPECT_GT(block->guest_stats.block_cache_hits, 0u);
}

// Tracing must be pure observation: with the tracer recording, every
// randomization mode boots to the SAME guest-visible outcome as with it
// off — RAM (kernel image window), init checksum, console transcript, and
// retired instruction count included. This is the paper-facing determinism
// contract: attaching the profiler cannot move the numbers it measures.
TEST(TraceBitIdentityTest, TracedBootsAreBitIdentical) {
  for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
    SCOPED_TRACE(RandoModeName(rando));
    BuiltKernel& kernel = GetKernel(KernelProfile::kAws, rando);

    MicroVmConfig config;
    config.mem_size_bytes = kMem;
    config.rando = rando;
    config.seed = 99;
    config.kernel_image = "vmlinux";
    config.boot_mode = BootMode::kDirect;
    if (rando != RandoMode::kNone) {
      config.relocs_image = "vmlinux.relocs";
    }

    trace::Tracer::Instance().Stop();
    MicroVm plain_vm(kernel.storage, config);
    auto plain = plain_vm.Boot();
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    auto plain_region = plain_vm.KernelRegion();
    ASSERT_TRUE(plain_region.ok());

    trace::Tracer::Instance().Start();
    MicroVm traced_vm(kernel.storage, config);
    auto traced = traced_vm.Boot();
    trace::Tracer::Instance().Stop();
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    auto traced_region = traced_vm.KernelRegion();
    ASSERT_TRUE(traced_region.ok());

    EXPECT_EQ(plain->init_done, traced->init_done);
    EXPECT_EQ(plain->init_checksum, traced->init_checksum);
    EXPECT_EQ(plain->console, traced->console);
    EXPECT_EQ(plain->guest_stop, traced->guest_stop);
    EXPECT_EQ(plain->guest_stats.instructions, traced->guest_stats.instructions);
    // Bit-identical RAM: the whole kernel image window, byte for byte.
    EXPECT_EQ(*plain_region, *traced_region);
    // And the trace actually recorded the boot it did not perturb.
    const std::vector<trace::Event> events = trace::Tracer::Instance().Collect();
    EXPECT_FALSE(events.empty());
    bool saw_loader = false;
    for (const trace::Event& e : events) {
      saw_loader = saw_loader || std::string(e.category) == "loader";
    }
    EXPECT_TRUE(saw_loader);
  }
}

std::vector<MatrixCase> AllCases() {
  std::vector<MatrixCase> cases;
  for (KernelProfile profile :
       {KernelProfile::kLupine, KernelProfile::kAws, KernelProfile::kUbuntu}) {
    for (RandoMode rando : {RandoMode::kNone, RandoMode::kKaslr, RandoMode::kFgKaslr}) {
      for (Method method : {Method::kDirect, Method::kDirectPvh, Method::kBzLz4, Method::kBzGzip,
                            Method::kBzNone, Method::kBzNoneOptimized}) {
        cases.push_back(MatrixCase{profile, rando, method});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, BootMatrixTest, ::testing::ValuesIn(AllCases()),
                         CaseName);

}  // namespace
}  // namespace imk
