// Unit tests for guest memory, the storage/page-cache model, boot timelines,
// and monitor-side loading edge cases.
#include <gtest/gtest.h>

#include "src/kernel/kernel_builder.h"
#include "src/vmm/boot_timeline.h"
#include "src/vmm/disk_model.h"
#include "src/vmm/guest_memory.h"
#include "src/vmm/loader.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

TEST(GuestMemoryTest, BoundsChecks) {
  GuestMemory memory(4096);
  EXPECT_TRUE(memory.Slice(0, 4096).ok());
  EXPECT_FALSE(memory.Slice(0, 4097).ok());
  EXPECT_FALSE(memory.Slice(4096, 1).ok());
  EXPECT_FALSE(memory.Slice(UINT64_MAX, 1).ok());
  Bytes data = {1, 2, 3};
  EXPECT_TRUE(memory.Write(100, ByteSpan(data)).ok());
  EXPECT_EQ(memory.all()[101], 2);
  EXPECT_FALSE(memory.Write(4095, ByteSpan(data)).ok());
  EXPECT_TRUE(memory.Zero(100, 3).ok());
  EXPECT_EQ(memory.all()[101], 0);
}

TEST(StorageTest, CacheModel) {
  Storage storage;
  storage.Put("image", Bytes(560, 0));  // 560 bytes at 560 MB/s = 1000 ns cold
  // Fresh images are cached (the producer just wrote them).
  auto warm = storage.Read("image");
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->modeled_io_ns, 0u);

  storage.DropCaches();
  auto cold = storage.Read("image");
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->modeled_io_ns, 1000u);

  // The read itself warms the cache.
  auto again = storage.Read("image");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->modeled_io_ns, 0u);

  storage.DropCaches();
  ASSERT_TRUE(storage.Warm("image").ok());
  auto warmed = storage.Read("image");
  ASSERT_TRUE(warmed.ok());
  EXPECT_EQ(warmed->modeled_io_ns, 0u);

  EXPECT_FALSE(storage.Read("missing").ok());
  EXPECT_FALSE(storage.Warm("missing").ok());
  EXPECT_EQ(*storage.SizeOf("image"), 560u);
}

TEST(BootTimelineTest, PhaseAccounting) {
  BootTimeline timeline;
  timeline.AddMeasured(BootPhase::kInMonitor, 1000);
  timeline.AddModeled(BootPhase::kInMonitor, 500);
  timeline.AddMeasured(BootPhase::kLinuxBoot, 2000);
  EXPECT_EQ(timeline.phase_ns(BootPhase::kInMonitor), 1500u);
  EXPECT_EQ(timeline.measured_ns(BootPhase::kInMonitor), 1000u);
  EXPECT_EQ(timeline.modeled_ns(BootPhase::kInMonitor), 500u);
  EXPECT_EQ(timeline.total_ns(), 3500u);
  EXPECT_NE(timeline.ToString().find("total"), std::string::npos);
}

class LoaderEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01));
    ASSERT_TRUE(built.ok());
    info_ = std::move(*built);
  }
  KernelBuildInfo info_;
};

TEST_F(LoaderEdgeTest, GuestMemoryTooSmall) {
  GuestMemory memory(8ull << 20);  // image does not fit above 16 MiB
  DirectBootParams params;
  Rng rng(1);
  auto loaded = DirectLoadKernel(memory, ByteSpan(info_.vmlinux), nullptr, params, rng);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(LoaderEdgeTest, GarbageKernelRejected) {
  GuestMemory memory(64ull << 20);
  Bytes junk(1 << 20, 0x5a);
  DirectBootParams params;
  Rng rng(1);
  auto loaded = DirectLoadKernel(memory, ByteSpan(junk), nullptr, params, rng);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kParseError);
}

TEST_F(LoaderEdgeTest, NoteConstantsAreUsed) {
  GuestMemory memory(256ull << 20);
  DirectBootParams params;
  params.requested = RandoMode::kKaslr;
  params.use_note_constants = true;
  Rng rng(7);
  auto loaded = DirectLoadKernel(memory, ByteSpan(info_.vmlinux), &info_.relocs, params, rng);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The note carries the same constants as the defaults, so the choice obeys
  // the standard constraints.
  EXPECT_GE(loaded->choice.phys_load_addr, 0x1000000u);
  EXPECT_EQ(loaded->choice.virt_slide % 0x200000, 0u);
}

TEST_F(LoaderEdgeTest, SlidesCoverTheWindowOverManyBoots) {
  // Reusing one guest memory is fine: each load fully overwrites its image.
  GuestMemory memory(256ull << 20);
  DirectBootParams params;
  params.requested = RandoMode::kKaslr;
  Rng rng(3);
  uint64_t min_slide = UINT64_MAX;
  uint64_t max_slide = 0;
  for (int i = 0; i < 40; ++i) {
    auto loaded = DirectLoadKernel(memory, ByteSpan(info_.vmlinux), &info_.relocs, params, rng);
    ASSERT_TRUE(loaded.ok());
    min_slide = std::min(min_slide, loaded->choice.virt_slide);
    max_slide = std::max(max_slide, loaded->choice.virt_slide);
  }
  EXPECT_LT(min_slide, 150ull << 20);  // low slides appear
  EXPECT_GT(max_slide, 500ull << 20);  // high slides appear
}

TEST(MicroVmTest, BootTwiceRejected) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kNone, 0.01));
  ASSERT_TRUE(built.ok());
  Storage storage;
  storage.Put("vmlinux", built->vmlinux);
  MicroVmConfig config;
  config.mem_size_bytes = 128ull << 20;
  config.kernel_image = "vmlinux";
  config.seed = 1;
  MicroVm vm(storage, config);
  ASSERT_TRUE(vm.Boot().ok());
  EXPECT_FALSE(vm.Boot().ok());
}

TEST(MicroVmTest, ColdCacheAddsModeledIo) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kNone, 0.01));
  ASSERT_TRUE(built.ok());
  Storage storage;
  storage.Put("vmlinux", built->vmlinux);
  storage.DropCaches();
  MicroVmConfig config;
  config.mem_size_bytes = 128ull << 20;
  config.kernel_image = "vmlinux";
  config.seed = 1;
  MicroVm cold_vm(storage, config);
  auto cold = cold_vm.Boot();
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold->timeline.modeled_ns(BootPhase::kInMonitor), 0u);

  MicroVm warm_vm(storage, config);  // cache warmed by the previous read
  auto warm = warm_vm.Boot();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->timeline.modeled_ns(BootPhase::kInMonitor), 0u);
}

TEST(MicroVmTest, GuestMarkersRecorded) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kNone, 0.01));
  ASSERT_TRUE(built.ok());
  Storage storage;
  storage.Put("vmlinux", built->vmlinux);
  MicroVmConfig config;
  config.mem_size_bytes = 128ull << 20;
  config.kernel_image = "vmlinux";
  config.seed = 1;
  MicroVm vm(storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok());
  // Kernel entry marker, init start marker, init done marker.
  ASSERT_GE(report->timeline.markers().size(), 3u);
  EXPECT_EQ(report->timeline.markers()[0].first, kMarkerKernelEntry);
  EXPECT_EQ(report->timeline.markers()[1].first, kMarkerInitStart);
}

TEST(MicroVmTest, LinuxBootScalesWithGuestMemory) {
  // Figure 10's mechanism: guest memory-init work grows with RAM size.
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kNone, 0.01));
  ASSERT_TRUE(built.ok());
  Storage storage;
  storage.Put("vmlinux", built->vmlinux);
  auto boot_instructions = [&](uint64_t mem) -> uint64_t {
    MicroVmConfig config;
    config.mem_size_bytes = mem;
    config.kernel_image = "vmlinux";
    config.seed = 1;
    MicroVm vm(storage, config);
    auto report = vm.Boot();
    EXPECT_TRUE(report.ok());
    return report->guest_stats.instructions;
  };
  const uint64_t small = boot_instructions(128ull << 20);
  const uint64_t big = boot_instructions(512ull << 20);
  // Memory init touches one word per 16 KiB batch, ~4 instructions each.
  EXPECT_GT(big, small + (384ull << 20) / 16384 * 3);
}

}  // namespace
}  // namespace imk
