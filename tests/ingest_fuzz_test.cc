// Seeded ingestion fuzzing: the monitor parses kernel images it does not
// trust, so every parser in the ingestion path — ELF reader, image-template
// builder, relocs decoder, bzImage reader — must turn arbitrary byte-level
// damage into a Status, never a crash. Mutations are drawn from pinned Rng
// seeds, so any failure reproduces from its iteration index.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "src/base/rng.h"
#include "src/elf/elf_reader.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/relocs.h"
#include "src/vmm/image_template.h"

namespace imk {
namespace {

constexpr int kMutationRounds = 48;
constexpr int kTruncationRounds = 24;

const KernelBuildInfo& Info() {
  static KernelBuildInfo* info = [] {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, 0.008));
    EXPECT_TRUE(built.ok());
    return new KernelBuildInfo(std::move(*built));
  }();
  return *info;
}

// Flips 1..16 bytes of `clean` at Rng-chosen positions.
Bytes Mutate(const Bytes& clean, uint64_t seed) {
  Bytes out = clean;
  Rng rng(seed);
  const uint64_t flips = rng.NextInRange(1, 16);
  for (uint64_t i = 0; i < flips && !out.empty(); ++i) {
    out[rng.NextBelow(out.size())] ^= static_cast<uint8_t>(rng.NextInRange(1, 255));
  }
  return out;
}

// Exercises every ELF-ingestion consumer on one (possibly damaged) image.
// The only requirement is "no crash, no UB": each call either succeeds or
// returns an error Status.
void IngestElf(ByteSpan image) {
  auto elf = ElfReader::Parse(image);
  if (elf.ok()) {
    (void)elf->ReadSymbols();
    for (const ElfSection& section : elf->sections()) {
      (void)elf->SectionData(section);
    }
    for (const Elf64Phdr& phdr : elf->program_headers()) {
      (void)elf->SegmentData(phdr);
    }
    (void)ExtractRelocsFromElf(*elf);
  }
  TemplateOptions options;
  options.extract_relocs = true;
  (void)BuildImageTemplate(image, options);
}

TEST(IngestFuzzTest, MutatedVmlinuxNeverCrashesTheElfPath) {
  const Bytes& clean = Info().vmlinux;
  for (int round = 0; round < kMutationRounds; ++round) {
    const Bytes mutated = Mutate(clean, 0x1000 + round);
    IngestElf(ByteSpan(mutated));
  }
}

TEST(IngestFuzzTest, TruncatedVmlinuxNeverCrashesTheElfPath) {
  const Bytes& clean = Info().vmlinux;
  for (int round = 0; round < kTruncationRounds; ++round) {
    Rng rng(0x2000 + round);
    const uint64_t len = rng.NextBelow(clean.size());
    const Bytes prefix(clean.begin(), clean.begin() + len);
    IngestElf(ByteSpan(prefix));
  }
  IngestElf(ByteSpan());  // the empty image is the ultimate truncation
}

TEST(IngestFuzzTest, TruncatedSymtabIsAParseErrorNotACrash) {
  // Target the satellite hardening directly: shrink .symtab by a non-multiple
  // of the symbol size so its data no longer divides evenly.
  const Bytes& clean = Info().vmlinux;
  auto elf = ElfReader::Parse(ByteSpan(clean));
  ASSERT_TRUE(elf.ok());
  auto symtab = elf->FindSection(".symtab");
  ASSERT_TRUE(symtab.ok());

  Bytes damaged = clean;
  // Section headers live at e_shoff; patch sh_size in place.
  const uint64_t shoff = elf->header().e_shoff + (*symtab)->index * sizeof(Elf64Shdr);
  Elf64Shdr header = (*symtab)->header;
  header.sh_size -= 7;
  std::memcpy(damaged.data() + shoff, &header, sizeof(header));

  auto reparsed = ElfReader::Parse(ByteSpan(damaged));
  ASSERT_TRUE(reparsed.ok());
  auto symbols = reparsed->ReadSymbols();
  ASSERT_FALSE(symbols.ok());
  EXPECT_EQ(symbols.status().code(), ErrorCode::kParseError);
}

TEST(IngestFuzzTest, MutatedRelocsBlobNeverCrashesTheDecoder) {
  const Bytes clean = SerializeRelocs(Info().relocs);
  for (int round = 0; round < kMutationRounds; ++round) {
    const Bytes mutated = Mutate(clean, 0x3000 + round);
    (void)ParseRelocs(ByteSpan(mutated));
  }
  for (int round = 0; round < kTruncationRounds; ++round) {
    Rng rng(0x4000 + round);
    const uint64_t len = rng.NextBelow(clean.size());
    const Bytes prefix(clean.begin(), clean.begin() + len);
    (void)ParseRelocs(ByteSpan(prefix));
  }
}

TEST(IngestFuzzTest, MutatedBzImageNeverCrashesTheReader) {
  auto image = BuildBzImage(ByteSpan(Info().vmlinux), Info().relocs, "lz4",
                            LoaderKind::kStandard);
  ASSERT_TRUE(image.ok());
  const Bytes clean = SerializeBzImage(*image);

  for (int round = 0; round < kMutationRounds; ++round) {
    const Bytes mutated = Mutate(clean, 0x5000 + round);
    (void)ParseBzImageHeader(ByteSpan(mutated));
    auto parsed = ParseBzImage(ByteSpan(mutated));
    if (parsed.ok()) {
      // Payload damage must be caught by the recorded CRC, not by the codec
      // tripping over garbage.
      (void)DecompressPayload(*parsed);
    }
  }
  for (int round = 0; round < kTruncationRounds; ++round) {
    Rng rng(0x6000 + round);
    const uint64_t len = rng.NextBelow(clean.size());
    const Bytes prefix(clean.begin(), clean.begin() + len);
    (void)ParseBzImageHeader(ByteSpan(prefix));
    (void)ParseBzImage(ByteSpan(prefix));
  }
}

TEST(IngestFuzzTest, CleanInputsStillIngest) {
  // The fuzz helpers must not be vacuous: the undamaged artifacts parse.
  const KernelBuildInfo& info = Info();
  EXPECT_TRUE(ElfReader::Parse(ByteSpan(info.vmlinux)).ok());
  EXPECT_TRUE(BuildImageTemplate(ByteSpan(info.vmlinux), TemplateOptions{}).ok());
  EXPECT_TRUE(ParseRelocs(ByteSpan(SerializeRelocs(info.relocs))).ok());
}

}  // namespace
}  // namespace imk
