// Gadget scanner tests, including the randomization-diversity property the
// paper's §3 motivates: one leaked gadget reveals all of a KASLR kernel but
// almost none of an FGKASLR kernel.
#include <gtest/gtest.h>

#include "src/isa/assembler.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/gadgets.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

TEST(GadgetScanTest, FindsRetSuffixes) {
  Assembler a(0x1000);
  a.LoadI(1, 5);   // 10 bytes
  a.Add(1, 2);     // 3 bytes
  a.Ret();         // 1 byte  -> suffixes: [ret], [add;ret], [loadi;add;ret]
  a.Nop();
  a.Halt();
  Bytes code = a.TakeCode();
  auto gadgets = ScanGadgets(ByteSpan(code), 0x1000);
  ASSERT_EQ(gadgets.size(), 3u);
  EXPECT_EQ(gadgets[0].vaddr, 0x1000u + 13);  // the RET itself
  EXPECT_EQ(gadgets[0].instructions, 1u);
  EXPECT_EQ(gadgets[1].vaddr, 0x1000u + 10);  // add; ret
  EXPECT_EQ(gadgets[2].vaddr, 0x1000u);       // loadi; add; ret
}

TEST(GadgetScanTest, RespectsMaxLength) {
  Assembler a(0);
  for (int i = 0; i < 10; ++i) {
    a.Nop();
  }
  a.Ret();
  Bytes code = a.TakeCode();
  GadgetScanOptions options;
  options.max_instructions = 2;
  auto gadgets = ScanGadgets(ByteSpan(code), 0, options);
  EXPECT_EQ(gadgets.size(), 2u);
}

TEST(GadgetScanTest, NoRetsNoGadgets) {
  Assembler a(0);
  a.LoadI(1, 1);
  a.Halt();
  Bytes code = a.TakeCode();
  EXPECT_TRUE(ScanGadgets(ByteSpan(code), 0).empty());
}

TEST(GadgetScanTest, KernelTextYieldsManyGadgets) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01));
  ASSERT_TRUE(info.ok());
  // Scan the in-file text: every generated function ends in RET.
  auto elf = ElfReader::Parse(ByteSpan(info->vmlinux));
  ASSERT_TRUE(elf.ok());
  auto text = elf->FindSection(".text");
  ASSERT_TRUE(text.ok());
  auto data = elf->SectionData(**text);
  ASSERT_TRUE(data.ok());
  auto gadgets = ScanGadgets(*data, (*text)->header.sh_addr);
  EXPECT_GT(gadgets.size(), info->functions.size());
}

// The diversity property, measured on real randomized boots.
class GadgetDiversityTest : public ::testing::Test {
 protected:
  static double ModalFraction(RandoMode rando) {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, 0.01));
    EXPECT_TRUE(built.ok());
    Storage storage;
    storage.Put("vmlinux", built->vmlinux);
    storage.Put("vmlinux.relocs", SerializeRelocs(built->relocs));

    auto boot_and_scan = [&](uint64_t seed, Bytes* text_out, uint64_t* vaddr_out) {
      MicroVmConfig config;
      config.mem_size_bytes = 128ull << 20;
      config.kernel_image = "vmlinux";
      config.relocs_image = "vmlinux.relocs";
      config.rando = rando;
      config.seed = seed;
      MicroVm vm(storage, config);
      auto report = vm.Boot();
      EXPECT_TRUE(report.ok());
      // Runtime text: the first config.text_bytes of the kernel region.
      auto region = vm.KernelRegion();
      EXPECT_TRUE(region.ok());
      const uint64_t text_size = built->config.text_bytes;
      text_out->assign(region->begin(), region->begin() + text_size);
      *vaddr_out = vm.RuntimeAddr(built->text_vaddr);
      return ScanGadgets(ByteSpan(*text_out), *vaddr_out);
    };

    Bytes text_a;
    Bytes text_b;
    uint64_t vaddr_a = 0;
    uint64_t vaddr_b = 0;
    auto gadgets_a = boot_and_scan(10, &text_a, &vaddr_a);
    auto gadgets_b = boot_and_scan(20, &text_b, &vaddr_b);
    auto diversity = CompareGadgetAddresses(gadgets_a, ByteSpan(text_a), vaddr_a, gadgets_b,
                                            ByteSpan(text_b), vaddr_b);
    EXPECT_TRUE(diversity.ok()) << diversity.status().ToString();
    EXPECT_GT(diversity->gadgets, 100u);
    return diversity->modal_delta_fraction;
  }
};

TEST_F(GadgetDiversityTest, KaslrGadgetsShareOneDelta) {
  EXPECT_GT(ModalFraction(RandoMode::kKaslr), 0.95);
}

TEST_F(GadgetDiversityTest, FgKaslrGadgetsScatter) {
  EXPECT_LT(ModalFraction(RandoMode::kFgKaslr), 0.2);
}

}  // namespace
}  // namespace imk
