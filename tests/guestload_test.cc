// Tests for post-boot guest workloads: syscall dispatch, LEBench, and the
// kallsyms selftest under eager/lazy/skip fixup (paper §4.3).
#include <gtest/gtest.h>

#include "src/guestload/lebench.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr uint64_t kMem = 128ull << 20;

struct BootedVm {
  KernelBuildInfo info;
  Storage storage;
  std::unique_ptr<MicroVm> vm;

  explicit BootedVm(RandoMode rando, KallsymsFixup kallsyms = KallsymsFixup::kEager,
                    uint64_t seed = 42) {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, 0.01));
    if (!built.ok()) {
      ADD_FAILURE() << built.status().ToString();
      return;
    }
    info = std::move(*built);
    storage.Put("vmlinux", info.vmlinux);
    MicroVmConfig config;
    config.mem_size_bytes = kMem;
    config.kernel_image = "vmlinux";
    config.rando = rando;
    config.fg.kallsyms = kallsyms;
    config.seed = seed;
    if (!info.relocs.empty()) {
      storage.Put("vmlinux.relocs", SerializeRelocs(info.relocs));
      config.relocs_image = "vmlinux.relocs";
    }
    vm = std::make_unique<MicroVm>(storage, config);
    auto report = vm->Boot();
    if (!report.ok()) {
      ADD_FAILURE() << report.status().ToString();
      return;
    }
    EXPECT_EQ(report->init_checksum, info.expected_checksum);
  }
};

TEST(SyscallTest, DispatcherReturnsStableResults) {
  BootedVm booted(RandoMode::kNone);
  auto first = booted.vm->CallGuest(booted.info.syscall_entry_vaddr, 0, 4096, 1 << 26);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = booted.vm->CallGuest(booted.info.syscall_entry_vaddr, 0, 4096, 1 << 26);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->r0, second->r0);
  EXPECT_NE(first->r0, 0u);
}

TEST(SyscallTest, ResultsInvariantUnderRandomization) {
  BootedVm plain(RandoMode::kNone);
  BootedVm kaslr(RandoMode::kKaslr);
  BootedVm fg(RandoMode::kFgKaslr);
  for (uint64_t id = 0; id < plain.info.num_syscalls; ++id) {
    auto a = plain.vm->CallGuest(plain.info.syscall_entry_vaddr, id, 1024, 1 << 26);
    auto b = kaslr.vm->CallGuest(kaslr.info.syscall_entry_vaddr, id, 1024, 1 << 26);
    auto c = fg.vm->CallGuest(fg.info.syscall_entry_vaddr, id, 1024, 1 << 26);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok()) << "syscall " << id;
    EXPECT_EQ(a->r0, b->r0) << "syscall " << id;
    EXPECT_EQ(a->r0, c->r0) << "syscall " << id;
  }
}

TEST(SyscallTest, BufferArgScalesWork) {
  BootedVm booted(RandoMode::kNone);
  auto small = booted.vm->CallGuest(booted.info.syscall_entry_vaddr, 1, 4096, 1 << 26);
  auto big = booted.vm->CallGuest(booted.info.syscall_entry_vaddr, 1, 1 << 20, 1 << 26);
  ASSERT_TRUE(small.ok() && big.ok());
  EXPECT_GT(big->run.stats.instructions, small->run.stats.instructions * 10);
}

TEST(KallsymsSelftestTest, EagerFixupResolvesSymbols) {
  BootedVm booted(RandoMode::kFgKaslr, KallsymsFixup::kEager);
  for (uint64_t j = 0; j < 3 && j < booted.info.indirect_hashes.size(); ++j) {
    auto outcome = booted.vm->CallGuest(booted.info.selftest_entry_vaddr, j, 0, 1 << 26);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->r0, booted.info.indirect_hashes[j]) << "index " << j;
  }
}

TEST(KallsymsSelftestTest, SkipLeavesStaleTableButBootSucceeds) {
  // The paper's prototype omits the kallsyms fixup entirely: boot succeeds
  // (already checked in the constructor) but a later lookup sees stale data.
  BootedVm booted(RandoMode::kFgKaslr, KallsymsFixup::kSkip);
  size_t misses = 0;
  const size_t probes = std::min<size_t>(8, booted.info.indirect_hashes.size());
  for (uint64_t j = 0; j < probes; ++j) {
    auto outcome = booted.vm->CallGuest(booted.info.selftest_entry_vaddr, j, 0, 1 << 26);
    ASSERT_TRUE(outcome.ok());
    if (outcome->r0 != booted.info.indirect_hashes[j]) {
      ++misses;
    }
  }
  EXPECT_GT(misses, 0u) << "stale kallsyms should mis-resolve shuffled functions";
}

TEST(KallsymsSelftestTest, LazyFixupRunsOnFirstTouch) {
  BootedVm booted(RandoMode::kFgKaslr, KallsymsFixup::kLazy);
  // First touch triggers the monitor-side fixup; all lookups then succeed.
  for (uint64_t j = 0; j < 3 && j < booted.info.indirect_hashes.size(); ++j) {
    auto outcome = booted.vm->CallGuest(booted.info.selftest_entry_vaddr, j, 0, 1 << 26);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome->r0, booted.info.indirect_hashes[j]) << "index " << j;
  }
}

TEST(KallsymsSelftestTest, PlainKaslrNeedsNoFixup) {
  // Text-relative kallsyms offsets are immune to base randomization — the
  // reason Linux KASLR never touches kallsyms (§3.2).
  BootedVm booted(RandoMode::kKaslr);
  auto outcome = booted.vm->CallGuest(booted.info.selftest_entry_vaddr, 0, 0, 1 << 26);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->r0, booted.info.indirect_hashes[0]);
}

TEST(LeBenchTest, RunsAndValidates) {
  BootedVm booted(RandoMode::kNone);
  auto results = RunLeBench(*booted.vm, booted.info, 3);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_GE(results->size(), 12u);
  for (const auto& result : *results) {
    EXPECT_GT(result.cycles_per_iteration, 0) << result.name;
    EXPECT_GE(result.icache_miss_rate, 0) << result.name;
    EXPECT_LT(result.icache_miss_rate, 0.9) << result.name;
  }
}

TEST(LeBenchTest, FgKaslrCostsMoreCyclesOverall) {
  // Figure 11's headline: FGKASLR pays a single-digit percentage through
  // i-cache locality; KASLR is near-free. Aggregate over all ops to keep the
  // assertion robust to per-op noise.
  BootedVm plain(RandoMode::kNone);
  BootedVm fg(RandoMode::kFgKaslr);
  // Tiny test kernels need a proportionally tiny cache to see pressure.
  IcacheConfig cache;
  cache.size_bytes = 4 * 1024;
  cache.ways = 4;
  auto base = RunLeBench(*plain.vm, plain.info, 5, cache);
  auto shuffled = RunLeBench(*fg.vm, fg.info, 5, cache);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(shuffled.ok());
  double base_total = 0;
  double fg_total = 0;
  for (size_t i = 0; i < base->size(); ++i) {
    base_total += (*base)[i].cycles_per_iteration;
    fg_total += (*shuffled)[i].cycles_per_iteration;
  }
  EXPECT_GT(fg_total, base_total);            // shuffling costs something
  EXPECT_LT(fg_total, base_total * 1.5);      // ...but not catastrophically
}

}  // namespace
}  // namespace imk
