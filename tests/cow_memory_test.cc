// Paged copy-on-write guest memory: FrameStore fault edge cases, bit-identity
// of the zero-copy CoW load against a flat serial reference across the boot
// matrix, and boot-storm determinism across thread counts.
#include <cstring>

#include <gtest/gtest.h>

#include "src/base/frame_store.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/boot_storm.h"
#include "src/vmm/image_template.h"
#include "src/vmm/loader.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr uint64_t kFrame = FrameStore::kFrameBytes;

Bytes Pattern(uint64_t len, uint8_t salt) {
  Bytes out(len);
  for (uint64_t i = 0; i < len; ++i) {
    out[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return out;
}

// ---- FrameStore fault edge cases ----

TEST(FrameStoreTest, FreshStoreReadsZerosWithoutMaterializing) {
  FrameStore store(8 * kFrame);
  Bytes buf(3 * kFrame, 0xab);
  ASSERT_TRUE(store.Read(kFrame / 2, buf.data(), buf.size()).ok());
  for (uint8_t b : buf) {
    ASSERT_EQ(b, 0);
  }
  EXPECT_EQ(store.dirty_frames(), 0u);
  EXPECT_EQ(store.shared_frames(), 0u);
  EXPECT_EQ(store.zero_frames(), store.frame_count());
}

TEST(FrameStoreTest, WriteStraddlingFramesMaterializesExactlyCoveredFrames) {
  FrameStore store(8 * kFrame);
  const Bytes data = Pattern(2 * kFrame, 7);  // covers parts of frames 1,2,3
  ASSERT_TRUE(store.Write(kFrame + kFrame / 2, ByteSpan(data)).ok());
  EXPECT_EQ(store.dirty_frames(), 3u);
  EXPECT_EQ(store.StateOf(0), FrameStore::FrameState::kZero);
  EXPECT_EQ(store.StateOf(4), FrameStore::FrameState::kZero);
  Bytes back(data.size());
  ASSERT_TRUE(store.Read(kFrame + kFrame / 2, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
  // The zero halves around the write stay zero.
  uint8_t edge = 0xff;
  ASSERT_TRUE(store.Read(kFrame, &edge, 1).ok());
  EXPECT_EQ(edge, 0);
}

TEST(FrameStoreTest, MapSharedAliasesZeroCopyAndFaultsOnWrite) {
  FrameStore store(8 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(2 * kFrame, 3));
  ASSERT_TRUE(store.MapShared(2 * kFrame, ByteSpan(*src), src).ok());
  EXPECT_EQ(store.shared_frames(), 2u);
  EXPECT_EQ(store.dirty_frames(), 0u);
  // Alias identity: the shared frame reads through the template pointer.
  EXPECT_EQ(store.SharedSource(2), src->data());
  EXPECT_EQ(store.SharedSource(3), src->data() + kFrame);

  Bytes back(2 * kFrame);
  ASSERT_TRUE(store.Read(2 * kFrame, back.data(), back.size()).ok());
  EXPECT_EQ(back, *src);

  // One-byte write faults exactly one frame; the other stays aliased, and
  // the faulted frame keeps its template content around the write.
  const uint8_t poke = 0x5a;
  ASSERT_TRUE(store.Write(2 * kFrame + 17, ByteSpan(&poke, 1)).ok());
  EXPECT_EQ(store.dirty_frames(), 1u);
  EXPECT_EQ(store.shared_frames(), 1u);
  EXPECT_EQ(store.SharedSource(2), nullptr);
  EXPECT_EQ(store.SharedSource(3), src->data() + kFrame);
  ASSERT_TRUE(store.Read(2 * kFrame, back.data(), back.size()).ok());
  Bytes expect = *src;
  expect[17] = poke;
  EXPECT_EQ(back, expect);
}

TEST(FrameStoreTest, MapSharedCopiesSubFrameTail) {
  FrameStore store(8 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(kFrame + kFrame / 2, 9));
  ASSERT_TRUE(store.MapShared(0, ByteSpan(*src), src).ok());
  EXPECT_EQ(store.shared_frames(), 1u);  // whole frame aliased
  EXPECT_EQ(store.dirty_frames(), 1u);   // half-frame tail copied
  Bytes back(src->size());
  ASSERT_TRUE(store.Read(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, *src);
  // The tail frame's unwritten half reads zero.
  uint8_t rest = 0xff;
  ASSERT_TRUE(store.Read(kFrame + kFrame / 2, &rest, 1).ok());
  EXPECT_EQ(rest, 0);
}

TEST(FrameStoreTest, MapSharedRejectsUnalignedAndExternalBacking) {
  FrameStore store(4 * kFrame);
  auto src = std::make_shared<Bytes>(Bytes(kFrame, 1));
  EXPECT_FALSE(store.MapShared(12, ByteSpan(*src), src).ok());

  Bytes backing(4 * kFrame);
  FrameStore flat{MutableByteSpan(backing)};
  EXPECT_FALSE(flat.MapShared(0, ByteSpan(*src), src).ok());
}

TEST(FrameStoreTest, WritablePtrIsContiguousAcrossFrameBoundaries) {
  FrameStore store(8 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(3 * kFrame, 5));
  ASSERT_TRUE(store.MapShared(kFrame, ByteSpan(*src), src).ok());

  // A writable range straddling shared and zero frames materializes all of
  // them into one flat pointer.
  auto ptr = store.WritablePtr(kFrame + kFrame / 2, 3 * kFrame);
  ASSERT_TRUE(ptr.ok());
  const Bytes data = Pattern(3 * kFrame, 11);
  std::memcpy(*ptr, data.data(), data.size());
  Bytes back(data.size());
  ASSERT_TRUE(store.Read(kFrame + kFrame / 2, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(store.dirty_frames(), 4u);  // frames 1..4 materialized
  EXPECT_EQ(store.shared_frames(), 0u);
}

TEST(FrameStoreTest, WritablePtrAtExactFrameBoundsMaterializesOnlyThatFrame) {
  FrameStore store(8 * kFrame);
  auto ptr = store.WritablePtr(3 * kFrame, kFrame);
  ASSERT_TRUE(ptr.ok());
  EXPECT_EQ(store.dirty_frames(), 1u);
  EXPECT_EQ(store.StateOf(2), FrameStore::FrameState::kZero);
  EXPECT_EQ(store.StateOf(3), FrameStore::FrameState::kDirty);
  EXPECT_EQ(store.StateOf(4), FrameStore::FrameState::kZero);
}

TEST(FrameStoreTest, ZeroOverSharedFramesClearsWithoutTouchingZeroFrames) {
  FrameStore store(8 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(2 * kFrame, 13));
  ASSERT_TRUE(store.MapShared(2 * kFrame, ByteSpan(*src), src).ok());

  // Zero spanning a zero frame, both shared frames, and another zero frame.
  ASSERT_TRUE(store.Zero(kFrame, 4 * kFrame).ok());
  EXPECT_EQ(store.StateOf(1), FrameStore::FrameState::kZero);  // untouched
  EXPECT_EQ(store.StateOf(4), FrameStore::FrameState::kZero);
  EXPECT_EQ(store.shared_frames(), 0u);
  Bytes back(4 * kFrame, 0xee);
  ASSERT_TRUE(store.Read(kFrame, back.data(), back.size()).ok());
  for (uint8_t b : back) {
    ASSERT_EQ(b, 0);
  }
}

TEST(FrameStoreTest, PartialZeroOverSharedFramePreservesRestOfFrame) {
  FrameStore store(4 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(kFrame, 21));
  ASSERT_TRUE(store.MapShared(0, ByteSpan(*src), src).ok());
  ASSERT_TRUE(store.Zero(64, 32).ok());
  Bytes back(kFrame);
  ASSERT_TRUE(store.Read(0, back.data(), back.size()).ok());
  Bytes expect = *src;
  std::memset(expect.data() + 64, 0, 32);
  EXPECT_EQ(back, expect);
}

TEST(FrameStoreTest, MapSharedOverDirtyFrameRevertsToShared) {
  FrameStore store(4 * kFrame);
  const Bytes scribble = Pattern(kFrame, 17);
  ASSERT_TRUE(store.Write(0, ByteSpan(scribble)).ok());
  EXPECT_EQ(store.dirty_frames(), 1u);

  auto src = std::make_shared<Bytes>(Pattern(kFrame, 23));
  ASSERT_TRUE(store.MapShared(0, ByteSpan(*src), src).ok());
  EXPECT_EQ(store.dirty_frames(), 0u);
  EXPECT_EQ(store.shared_frames(), 1u);
  Bytes back(kFrame);
  ASSERT_TRUE(store.Read(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, *src);
}

TEST(FrameStoreTest, ReadPtrGathersAcrossStateBoundaries) {
  FrameStore store(4 * kFrame);
  auto src = std::make_shared<Bytes>(Pattern(kFrame, 29));
  ASSERT_TRUE(store.MapShared(kFrame, ByteSpan(*src), src).ok());

  // Range straddling a zero frame and a shared frame cannot be served by one
  // pointer; it must gather into scratch and still read correctly.
  Bytes scratch(2 * kFrame);
  auto ptr = store.ReadPtr(kFrame / 2, kFrame, scratch.data());
  ASSERT_TRUE(ptr.ok());
  Bytes expect(kFrame, 0);
  std::memcpy(expect.data() + kFrame / 2, src->data(), kFrame / 2);
  EXPECT_EQ(0, std::memcmp(*ptr, expect.data(), kFrame));
  EXPECT_EQ(store.dirty_frames(), 0u);  // reads never materialize
}

TEST(FrameStoreTest, FlatAdapterWritesThroughToExternalBuffer) {
  Bytes backing(4 * kFrame, 0);
  FrameStore flat{MutableByteSpan(backing)};
  EXPECT_EQ(flat.dirty_frames(), flat.frame_count());
  const Bytes data = Pattern(kFrame, 31);
  ASSERT_TRUE(flat.Write(kFrame / 2, ByteSpan(data)).ok());
  EXPECT_EQ(0, std::memcmp(backing.data() + kFrame / 2, data.data(), data.size()));
}

TEST(FrameStoreTest, OutOfRangeAccessesFail) {
  FrameStore store(2 * kFrame);
  Bytes buf(kFrame);
  EXPECT_FALSE(store.WritablePtr(2 * kFrame, 1).ok());
  EXPECT_FALSE(store.Read(kFrame, buf.data(), 2 * kFrame).ok());
  EXPECT_FALSE(store.Zero(0, 3 * kFrame).ok());
}

// ---- paged-vs-flat bit-identity across the boot matrix ----

class PagedVsFlatTest : public ::testing::TestWithParam<RandoMode> {};

// The CoW load (zero-copy aliasing, fault-materialized randomizer writes,
// fg-region skip) must produce bytes identical to the obvious flat pipeline:
// copy the whole pristine image, shuffle, relocate.
TEST_P(PagedVsFlatTest, DirectLoadMatchesFlatReference) {
  const RandoMode rando = GetParam();
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, rando, 0.02));
  ASSERT_TRUE(info.ok());
  auto tmpl = BuildImageTemplate(ByteSpan(info->vmlinux), TemplateOptions{});
  ASSERT_TRUE(tmpl.ok());

  constexpr uint64_t kMem = 192ull << 20;
  constexpr uint64_t kSeed = 4242;
  GuestMemory memory(kMem);
  DirectBootParams params;
  params.requested = rando;
  Rng rng(kSeed);
  auto loaded = DirectLoadFromTemplate(memory, *tmpl,
                                       info->relocs.empty() ? nullptr : &info->relocs, params,
                                       rng);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Flat reference with its own Rng: same draws -> same choice and shuffle.
  Rng ref_rng(kSeed);
  OffsetChoice choice;
  KernelConstantsNote constants = DefaultKernelConstants();
  if ((*tmpl)->note_constants.has_value()) {
    constants = *(*tmpl)->note_constants;
  }
  if (rando != RandoMode::kNone) {
    OffsetConstraints constraints;
    constraints.image_mem_size = (*tmpl)->mem_size;
    constraints.guest_mem_size = kMem;
    constraints.reserved_tail = params.stack_slack;
    constraints.constants = constants;
    auto chosen = ChooseRandomOffsets(constraints, ref_rng);
    ASSERT_TRUE(chosen.ok());
    choice = *chosen;
  } else {
    choice.phys_load_addr = constants.physical_start;
  }
  EXPECT_EQ(choice.virt_slide, loaded->choice.virt_slide);
  EXPECT_EQ(choice.phys_load_addr, loaded->choice.phys_load_addr);

  Bytes flat = (*tmpl)->pristine;
  LoadedImageView flat_view(MutableByteSpan(flat), (*tmpl)->link_base);
  if (rando == RandoMode::kFgKaslr) {
    ASSERT_TRUE((*tmpl)->fg.has_value());
    auto fg = ShuffleFunctionsPreparsed(*(*tmpl)->fg, flat_view, params.fg, ref_rng);
    ASSERT_TRUE(fg.ok());
    auto stats = ApplyRelocationsShuffledPerEntry(flat_view, info->relocs, choice.virt_slide,
                                                  fg->map);
    ASSERT_TRUE(stats.ok());
  } else if (rando == RandoMode::kKaslr) {
    auto stats = ApplyRelocations(flat_view, info->relocs, choice.virt_slide);
    ASSERT_TRUE(stats.ok());
  }

  auto paged = memory.CopyRange(loaded->choice.phys_load_addr, (*tmpl)->mem_size);
  ASSERT_TRUE(paged.ok());
  EXPECT_EQ(*paged, flat);

  // Density invariants: some of the image must still alias the template for
  // non-fg modes, and nothing materializes more frames than the image has.
  EXPECT_LE(loaded->mem.dirty_frames_total(), loaded->mem.image_frames);
  if (rando != RandoMode::kFgKaslr) {
    EXPECT_GT(loaded->mem.mapped_shared_frames, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, PagedVsFlatTest,
                         ::testing::Values(RandoMode::kNone, RandoMode::kKaslr,
                                           RandoMode::kFgKaslr),
                         [](const ::testing::TestParamInfo<RandoMode>& param) {
                           return std::string(RandoModeName(param.param));
                         });

// bzImage boots randomize inside the guest, writing through the interpreter
// into paged memory. Two same-seed boots must agree bit for bit.
class PagedBzImageTest : public ::testing::TestWithParam<RandoMode> {};

TEST_P(PagedBzImageTest, SameSeedBootsAreBitIdentical) {
  const RandoMode rando = GetParam();
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, 0.008));
  ASSERT_TRUE(info.ok());
  auto image = BuildBzImage(ByteSpan(info->vmlinux), info->relocs, "none", LoaderKind::kStandard);
  ASSERT_TRUE(image.ok());
  Storage storage;
  storage.Put("bz", SerializeBzImage(*image));

  MicroVmConfig config;
  config.mem_size_bytes = 160ull << 20;
  config.kernel_image = "bz";
  config.boot_mode = BootMode::kBzImage;
  config.rando = rando;
  config.seed = 77;

  Bytes regions[2];
  for (int i = 0; i < 2; ++i) {
    MicroVm vm(storage, config);
    auto report = vm.Boot();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->init_done);
    EXPECT_EQ(report->init_checksum, info->expected_checksum);
    auto region = vm.KernelRegion();
    ASSERT_TRUE(region.ok());
    regions[i] = std::move(*region);
  }
  EXPECT_EQ(regions[0], regions[1]);
}

INSTANTIATE_TEST_SUITE_P(AllModes, PagedBzImageTest,
                         ::testing::Values(RandoMode::kNone, RandoMode::kKaslr,
                                           RandoMode::kFgKaslr),
                         [](const ::testing::TestParamInfo<RandoMode>& param) {
                           return std::string(RandoModeName(param.param));
                         });

// ---- boot-storm determinism across thread counts ----

TEST(BootStormTest, FixedSeedsGiveIdenticalKernelsRegardlessOfThreads) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, 0.02));
  ASSERT_TRUE(info.ok());
  const Bytes relocs_blob = SerializeRelocs(info->relocs);

  StormOptions options;
  options.vms = 4;
  options.rando = RandoMode::kKaslr;
  options.mem_size_bytes = 192ull << 20;
  options.expected_checksum = info->expected_checksum;
  options.keep_kernel_regions = true;
  options.seed_base = 99;

  options.threads = 1;
  auto serial = RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  options.threads = 3;
  auto storm = RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();

  ASSERT_EQ(serial->kernel_regions.size(), storm->kernel_regions.size());
  for (size_t i = 0; i < serial->kernel_regions.size(); ++i) {
    EXPECT_EQ(serial->kernel_regions[i], storm->kernel_regions[i]) << "VM " << i;
  }
  // Distinct seeds must give distinct layouts (the storm randomizes per VM).
  EXPECT_NE(serial->kernel_regions[0], serial->kernel_regions[1]);
  // Warm storm: the template is built once, every boot after hits the cache.
  EXPECT_GE(storm->cache_hits, storm->vms);
}

TEST(BootStormTest, LaunchLaneMatchesFullLaneLayouts) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, 0.02));
  ASSERT_TRUE(info.ok());
  const Bytes relocs_blob = SerializeRelocs(info->relocs);

  StormOptions options;
  options.vms = 2;
  options.threads = 2;
  options.rando = RandoMode::kKaslr;
  options.mem_size_bytes = 192ull << 20;
  options.keep_kernel_regions = true;
  options.seed_base = 7;

  // The launch-only lane loads the same layouts the full lane boots; the
  // full lane's guest init then writes data/bss, so compare the text moduli:
  // identical load => identical randomized placement choices.
  options.launch_only = true;
  auto launch = RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(launch.ok()) << launch.status().ToString();
  options.launch_only = false;
  options.expected_checksum = info->expected_checksum;
  auto full = RunBootStorm(ByteSpan(info->vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();

  ASSERT_EQ(launch->kernel_regions.size(), full->kernel_regions.size());
  for (size_t i = 0; i < launch->kernel_regions.size(); ++i) {
    // The two lanes snapshot different window sizes (load image vs full
    // kernel region); guest init mutates writable sections. The first page
    // of text is read-only under both lanes and must match exactly.
    ASSERT_GE(launch->kernel_regions[i].size(), kFrame);
    ASSERT_GE(full->kernel_regions[i].size(), kFrame);
    EXPECT_EQ(0, std::memcmp(launch->kernel_regions[i].data(), full->kernel_regions[i].data(),
                             kFrame))
        << "VM " << i;
  }
}

}  // namespace
}  // namespace imk
