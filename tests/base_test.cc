// Unit tests for src/base: Result, alignment, RNG, CRC32, byte I/O, stats.
#include <gtest/gtest.h>

#include "src/base/align.h"
#include "src/base/bytes.h"
#include "src/base/crc32.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/stats.h"

namespace imk {
namespace {

TEST(ResultTest, OkStatus) {
  Status status = OkStatus();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(ResultTest, ErrorCarriesCodeAndMessage) {
  Status status = ParseError("bad magic");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kParseError);
  EXPECT_EQ(status.ToString(), "PARSE_ERROR: bad magic");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good = 42;
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);

  Result<int> bad = NotFoundError("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kNotFound);
}

Result<int> Doubler(Result<int> input) {
  IMK_ASSIGN_OR_RETURN(int value, input);
  return value * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto doubled = Doubler(21);
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(*doubled, 42);
  auto propagated = Doubler(InternalError("x"));
  EXPECT_FALSE(propagated.ok());
  EXPECT_EQ(propagated.status().code(), ErrorCode::kInternal);
}

TEST(AlignTest, Basics) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(4096));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(AlignUp(0, 16), 0u);
  EXPECT_EQ(AlignUp(1, 16), 16u);
  EXPECT_EQ(AlignUp(16, 16), 16u);
  EXPECT_EQ(AlignDown(31, 16), 16u);
  EXPECT_TRUE(IsAligned(0x200000, 0x200000));
  EXPECT_FALSE(IsAligned(0x200001, 0x200000));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.NextBelow(8)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 800);  // uniform-ish: expected 1000 each
    EXPECT_LT(count, 1200);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Crc32Test, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3).
  const char* digits = "123456789";
  const uint32_t crc = Crc32(ByteSpan(reinterpret_cast<const uint8_t*>(digits), 9));
  EXPECT_EQ(crc, 0xcbf43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  Bytes data(1000);
  Rng rng(1);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const uint32_t oneshot = Crc32(ByteSpan(data));
  uint32_t crc = 0;
  crc = Crc32Update(crc, ByteSpan(data.data(), 400));
  crc = Crc32Update(crc, ByteSpan(data.data() + 400, 600));
  EXPECT_EQ(crc, oneshot);
}

TEST(ByteReaderTest, SequentialReads) {
  ByteWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU16(0x1234);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefull);
  Bytes data = writer.Take();
  ByteReader reader((ByteSpan(data)));
  EXPECT_EQ(*reader.ReadU8(), 0xab);
  EXPECT_EQ(*reader.ReadU16(), 0x1234);
  EXPECT_EQ(*reader.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789abcdefull);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteReaderTest, OutOfRangeReadsFail) {
  Bytes data = {1, 2, 3};
  ByteReader reader((ByteSpan(data)));
  EXPECT_FALSE(reader.ReadU32().ok());
  EXPECT_TRUE(reader.ReadU16().ok());
  EXPECT_FALSE(reader.ReadU16().ok());
  EXPECT_FALSE(reader.Skip(10).ok());
  EXPECT_FALSE(reader.SliceAt(2, 5).ok());
  EXPECT_TRUE(reader.SliceAt(1, 2).ok());
}

TEST(ByteWriterTest, AlignAndPatch) {
  ByteWriter writer;
  writer.WriteU8(1);
  writer.AlignTo(8);
  EXPECT_EQ(writer.size(), 8u);
  writer.WriteU32(0);
  writer.PatchU32(8, 0x55667788);
  EXPECT_EQ(LoadLe32(writer.bytes().data() + 8), 0x55667788u);
}

TEST(HumanSizeTest, Table1Style) {
  EXPECT_EQ(HumanSize(20ull << 20), "20M");
  EXPECT_EQ(HumanSize(94ull << 10), "94K");
  EXPECT_EQ(HumanSize(4404019), "4.2M");
  EXPECT_EQ(HumanSize(512), "512B");
}

TEST(StatsTest, SummaryMoments) {
  Summary summary;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    summary.Add(v);
  }
  EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
  EXPECT_DOUBLE_EQ(summary.min(), 2.0);
  EXPECT_DOUBLE_EQ(summary.max(), 9.0);
  EXPECT_NEAR(summary.stddev(), 2.138, 0.01);
  EXPECT_NEAR(summary.percentile(50), 4.5, 0.001);
}

TEST(StatsTest, EmptySummaryIsZero) {
  Summary summary;
  EXPECT_EQ(summary.mean(), 0.0);
  EXPECT_EQ(summary.min(), 0.0);
  EXPECT_EQ(summary.stddev(), 0.0);
}

}  // namespace
}  // namespace imk
