// Disassembler tests: assembler output must decode back to the expected
// mnemonics, and every generated kernel function must disassemble cleanly.
#include <gtest/gtest.h>

#include "src/elf/elf_reader.h"
#include "src/isa/assembler.h"
#include "src/isa/disassembler.h"
#include "src/kernel/kernel_builder.h"

namespace imk {
namespace {

TEST(DisassemblerTest, BasicMnemonics) {
  Assembler a(0x1000);
  a.LoadI(1, 0x42);
  a.LoadA64(2, 0xffffffff81000000ull);
  a.Add(1, 2);
  a.St64(1, 2, -8);
  a.Out(0x3f8, 1);
  a.Ret();
  Bytes code = a.TakeCode();
  auto insns = Disassemble(ByteSpan(code), 0x1000);
  ASSERT_TRUE(insns.ok()) << insns.status().ToString();
  ASSERT_EQ(insns->size(), 6u);
  EXPECT_EQ((*insns)[0].text, "loadi r1, 0x42");
  EXPECT_EQ((*insns)[1].text, "loada64 r2, 0xffffffff81000000");
  EXPECT_EQ((*insns)[2].text, "add r1, r2");
  EXPECT_EQ((*insns)[3].text, "st64 [r1-8], r2");
  EXPECT_EQ((*insns)[4].text, "out 0x3f8, r1");
  EXPECT_EQ((*insns)[5].text, "ret");
}

TEST(DisassemblerTest, BranchTargetsAreAbsolute) {
  Assembler a(0x2000);
  auto label = a.NewLabel();
  a.Jmp(label);
  a.Nop();
  a.Bind(label);
  a.Halt();
  Bytes code = a.TakeCode();
  auto insns = Disassemble(ByteSpan(code), 0x2000);
  ASSERT_TRUE(insns.ok());
  EXPECT_EQ((*insns)[0].text, "jmp 0x2006");  // 5-byte jmp + 1-byte nop
}

TEST(DisassemblerTest, InvalidOpcodeReported) {
  Bytes junk = {0xee, 0x00, 0x00};
  auto insn = DisassembleOne(ByteSpan(junk), 0);
  EXPECT_FALSE(insn.ok());
  EXPECT_EQ(insn.status().code(), ErrorCode::kParseError);
}

TEST(DisassemblerTest, TruncatedInstructionReported) {
  Assembler a(0);
  a.LoadI(1, 0x1234);
  Bytes code = a.TakeCode();
  auto insn = DisassembleOne(ByteSpan(code.data(), 4), 0);
  EXPECT_FALSE(insn.ok());
  EXPECT_EQ(insn.status().code(), ErrorCode::kOutOfRange);
}

// Every function of a generated kernel must decode from start to end with no
// invalid or truncated instructions (the builder's pad bytes are NOPs).
TEST(DisassemblerTest, WholeKernelTextDisassembles) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kFgKaslr, 0.01));
  ASSERT_TRUE(info.ok());
  auto elf = ElfReader::Parse(ByteSpan(info->vmlinux));
  ASSERT_TRUE(elf.ok());
  size_t checked = 0;
  for (const auto& section : elf->sections()) {
    if (section.name.rfind(".text.fn_", 0) != 0) {
      continue;
    }
    auto data = elf->SectionData(section);
    ASSERT_TRUE(data.ok());
    auto insns = Disassemble(*data, section.header.sh_addr);
    ASSERT_TRUE(insns.ok()) << section.name << ": " << insns.status().ToString();
    EXPECT_FALSE(insns->empty());
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

}  // namespace
}  // namespace imk
