// Fault-injection tests for the static KASLR-correctness analyzer: every
// clean profile × mode combination must verify with zero findings, and each
// injected corruption class must yield exactly the finding whose invariant
// it violates.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/elf/elf_reader.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/relocs.h"
#include "src/vmm/guest_memory.h"
#include "src/vmm/loader.h"
#include "src/vmm/microvm.h"
#include "src/verify/image_verifier.h"

namespace imk {
namespace {

constexpr uint64_t kGuestMem = 256ull << 20;
constexpr double kScale = 0.02;

// A kernel randomized into guest memory, plus the view the verifier needs.
struct Loaded {
  std::unique_ptr<GuestMemory> memory;
  LoadedKernel kernel;
  MutableByteSpan image;
};

Result<Loaded> LoadImage(const KernelBuildInfo& info, RandoMode rando, uint64_t seed,
                         FgKaslrParams fg = FgKaslrParams()) {
  Loaded out;
  out.memory = std::make_unique<GuestMemory>(kGuestMem);
  DirectBootParams params;
  params.requested = rando;
  params.fg = fg;
  Rng rng(seed);
  IMK_ASSIGN_OR_RETURN(
      out.kernel, DirectLoadKernel(*out.memory, ByteSpan(info.vmlinux),
                                   info.relocs.empty() ? nullptr : &info.relocs, params, rng));
  IMK_ASSIGN_OR_RETURN(
      out.image, out.memory->Slice(out.kernel.choice.phys_load_addr, out.kernel.image_mem_size));
  return out;
}

// Corruptions that un-apply or re-apply a slide are invisible at slide zero,
// so those tests need a seed whose draw lands on a nonzero slot.
Result<Loaded> LoadWithNonzeroSlide(const KernelBuildInfo& info, RandoMode rando,
                                    FgKaslrParams fg = FgKaslrParams()) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    IMK_ASSIGN_OR_RETURN(Loaded loaded, LoadImage(info, rando, seed, fg));
    if (loaded.kernel.choice.virt_slide != 0) {
      return loaded;
    }
  }
  return InternalError("no seed in 1..32 produced a nonzero slide");
}

VerifyInput InputFor(const KernelBuildInfo& info, const Loaded& loaded) {
  VerifyInput input;
  input.original_elf = ByteSpan(info.vmlinux);
  input.randomized = ByteSpan(loaded.image.data(), loaded.image.size());
  input.base_vaddr = loaded.kernel.link_text_vaddr;
  input.relocs = info.relocs.empty() ? nullptr : &info.relocs;
  input.map = loaded.kernel.fg.has_value() ? &loaded.kernel.fg->map : nullptr;
  input.choice = loaded.kernel.choice;
  input.guest_mem_size = kGuestMem;
  input.kallsyms_deferred = loaded.kernel.fg.has_value() && loaded.kernel.fg->kallsyms_pending;
  return input;
}

// Pointer into the randomized image for the (possibly shuffled) location of a
// link-time field address.
uint8_t* FieldPtr(const Loaded& loaded, uint64_t link_vaddr) {
  uint64_t vaddr = link_vaddr;
  if (loaded.kernel.fg.has_value()) {
    vaddr = loaded.kernel.fg->map.Translate(vaddr);
  }
  return loaded.image.data() + (vaddr - loaded.kernel.link_text_vaddr);
}

TEST(VerifyCleanTest, AllProfilesAndModesVerifyClean) {
  for (KernelProfile profile :
       {KernelProfile::kLupine, KernelProfile::kAws, KernelProfile::kUbuntu}) {
    for (RandoMode rando : {RandoMode::kKaslr, RandoMode::kFgKaslr}) {
      KernelConfig config = KernelConfig::Make(profile, rando, kScale);
      SCOPED_TRACE(config.Name());
      auto info = BuildKernel(config);
      ASSERT_TRUE(info.ok()) << info.status().ToString();
      auto loaded = LoadImage(*info, rando, /*seed=*/3);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      auto report = VerifyImage(InputFor(*info, *loaded));
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_TRUE(report->clean()) << report->ToString();
      EXPECT_EQ(report->total_findings(), 0u);
      EXPECT_GT(report->coverage().relocations_checked, 0u);
      EXPECT_GT(report->coverage().table_entries_checked, 0u);
      EXPECT_GT(report->coverage().data_words_scanned, 0u);
      if (rando == RandoMode::kFgKaslr) {
        EXPECT_GT(report->coverage().sections_checked, 0u);
      }
    }
  }
}

TEST(VerifyCleanTest, UnrandomizedImageVerifiesClean) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kNone, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadImage(*info, RandoMode::kNone, /*seed=*/5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->kernel.choice.virt_slide, 0u);
  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->clean()) << report->ToString();
}

TEST(VerifyFaultTest, SkippedAbs64RelocationDetected) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_FALSE(info->relocs.abs64.empty());
  auto loaded = LoadWithNonzeroSlide(*info, RandoMode::kKaslr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Un-apply the slide at one abs64 field, as if the relocation walk skipped
  // the entry: the field reverts to its link-time value.
  uint8_t* field = FieldPtr(*loaded, info->relocs.abs64.front());
  StoreLe64(field, LoadLe64(field) - loaded->kernel.choice.virt_slide);

  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CountOf(Invariant::kRelocAbs64), 1u) << report->ToString();
  EXPECT_EQ(report->total_findings(), 1u) << report->ToString();
}

TEST(VerifyFaultTest, DoubleAppliedInverse32RelocationDetected) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_FALSE(info->relocs.inverse32.empty());
  auto loaded = LoadWithNonzeroSlide(*info, RandoMode::kKaslr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Apply the inverse adjustment a second time (a double-visited entry).
  uint8_t* field = FieldPtr(*loaded, info->relocs.inverse32.front());
  StoreLe32(field, LoadLe32(field) - static_cast<uint32_t>(loaded->kernel.choice.virt_slide));

  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CountOf(Invariant::kRelocInverse32), 1u) << report->ToString();
  EXPECT_EQ(report->total_findings(), 1u) << report->ToString();
}

TEST(VerifyFaultTest, OverlappingShuffledSectionsDetected) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadImage(*info, RandoMode::kFgKaslr, /*seed=*/9);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->kernel.fg.has_value());
  std::vector<ShuffledRange> ranges = loaded->kernel.fg->map.ranges();
  ASSERT_GE(ranges.size(), 2u);

  // Collide a section with an equal-or-larger one so its span nests inside
  // the victim's: exactly one adjacent pair in new-vaddr order overlaps.
  const size_t victim = ranges[0].size >= ranges[1].size ? 0 : 1;
  const size_t mover = 1 - victim;
  ranges[mover].new_vaddr = ranges[victim].new_vaddr;
  ShuffleMap corrupted(std::move(ranges));

  VerifyInput input = InputFor(*info, *loaded);
  input.map = &corrupted;
  auto report = VerifyImage(input);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CountOf(Invariant::kSectionOverlap), 1u) << report->ToString();
  EXPECT_EQ(report->total_findings(), 1u) << report->ToString();
  // A structurally unsound map poisons every check that reads through it.
  EXPECT_TRUE(report->downstream_skipped());
}

// Does the 8-byte word at `slot` overlap any relocation field?
bool TouchesRelocField(const RelocInfo& relocs, uint64_t slot) {
  for (const auto* list : {&relocs.abs64, &relocs.abs32, &relocs.inverse32}) {
    for (uint64_t field : *list) {
      if (field < slot + 8 && slot < field + 8) {
        return true;
      }
    }
  }
  return false;
}

TEST(VerifyFaultTest, StaleTextPointerInDataDetected) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadWithNonzeroSlide(*info, RandoMode::kKaslr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Plant a link-time text address in a .data slot the relocation info does
  // not cover — the residue an incomplete relocs list would leave behind.
  auto elf = ElfReader::Parse(ByteSpan(info->vmlinux));
  ASSERT_TRUE(elf.ok());
  auto data_section = elf->FindSection(".data");
  ASSERT_TRUE(data_section.ok());
  const uint64_t lo = (*data_section)->header.sh_addr;
  const uint64_t hi = lo + (*data_section)->header.sh_size;
  uint64_t slot = 0;
  for (uint64_t candidate = (lo + 7) & ~7ull; candidate + 8 <= hi; candidate += 8) {
    if (!TouchesRelocField(info->relocs, candidate)) {
      slot = candidate;
      break;
    }
  }
  ASSERT_NE(slot, 0u) << "no relocation-free 8-byte slot in .data";
  StoreLe64(FieldPtr(*loaded, slot), loaded->kernel.link_text_vaddr + 16);

  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CountOf(Invariant::kStaleTextPointer), 1u) << report->ToString();
  EXPECT_EQ(report->total_findings(), 1u) << report->ToString();
}

TEST(VerifyFaultTest, StaleTextPointerInShuffledFgKaslrImageDetected) {
  // Same leak-scanner invariant as above, but against a function-granular
  // image: the planted absolute pointer must be caught even though every
  // text section has been shuffled away from its link-time address, i.e.
  // the scanner's notion of "stale" must be anchored to the link-time text
  // range, not to any post-shuffle layout.
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadWithNonzeroSlide(*info, RandoMode::kFgKaslr);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->kernel.fg.has_value());
  ASSERT_GE(loaded->kernel.fg->map.ranges().size(), 2u);

  auto elf = ElfReader::Parse(ByteSpan(info->vmlinux));
  ASSERT_TRUE(elf.ok());
  auto data_section = elf->FindSection(".data");
  ASSERT_TRUE(data_section.ok());
  const uint64_t lo = (*data_section)->header.sh_addr;
  const uint64_t hi = lo + (*data_section)->header.sh_size;
  uint64_t slot = 0;
  for (uint64_t candidate = (lo + 7) & ~7ull; candidate + 8 <= hi; candidate += 8) {
    if (!TouchesRelocField(info->relocs, candidate)) {
      slot = candidate;
      break;
    }
  }
  ASSERT_NE(slot, 0u) << "no relocation-free 8-byte slot in .data";
  // FieldPtr translates the slot itself through the shuffle map; the value
  // written is a raw link-time text address that nothing relocated.
  StoreLe64(FieldPtr(*loaded, slot), loaded->kernel.link_text_vaddr + 16);

  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->CountOf(Invariant::kStaleTextPointer), 1u) << report->ToString();
  EXPECT_EQ(report->total_findings(), 1u) << report->ToString();
  EXPECT_GT(report->coverage().data_words_scanned, 0u);
}

TEST(VerifyKallsymsTest, LazyFixupCleanWhenDeferredStaleWhenNot) {
  FgKaslrParams fg;
  fg.kallsyms = KallsymsFixup::kLazy;
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadImage(*info, RandoMode::kFgKaslr, /*seed=*/13, fg);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->kernel.fg.has_value());
  ASSERT_TRUE(loaded->kernel.fg->kallsyms_pending);

  // Lazy fixup window: kallsyms still pristine is the *expected* state.
  VerifyInput input = InputFor(*info, *loaded);
  ASSERT_TRUE(input.kallsyms_deferred);
  auto deferred_report = VerifyImage(input);
  ASSERT_TRUE(deferred_report.ok()) << deferred_report.status().ToString();
  EXPECT_TRUE(deferred_report->clean()) << deferred_report->ToString();

  // The same bytes judged against eager-fixup expectations are stale.
  input.kallsyms_deferred = false;
  auto eager_report = VerifyImage(input);
  ASSERT_TRUE(eager_report.ok()) << eager_report.status().ToString();
  EXPECT_GT(eager_report->CountOf(Invariant::kKallsymsStale), 0u);
}

TEST(VerifyReportTest, JsonSerialization) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto loaded = LoadImage(*info, RandoMode::kKaslr, /*seed=*/3);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto report = VerifyImage(InputFor(*info, *loaded));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_findings\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"relocations_checked\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"findings\":[]"), std::string::npos) << json;
}

TEST(VerifyMicroVmTest, VerifyAfterLoadHookRunsOnCleanBoot) {
  auto info = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, kScale));
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  Storage storage;
  storage.Put("kernel", Bytes(info->vmlinux));
  storage.Put("relocs", SerializeRelocs(info->relocs));

  MicroVmConfig config;
  config.kernel_image = "kernel";
  config.relocs_image = "relocs";
  config.rando = RandoMode::kFgKaslr;
  config.seed = 11;
  config.verify_after_load = true;
  MicroVm vm(storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  ASSERT_TRUE(report->verify.has_value());
  EXPECT_TRUE(report->verify->clean()) << report->verify->ToString();
  EXPECT_GT(report->verify->coverage().relocations_checked, 0u);
}

}  // namespace
}  // namespace imk
