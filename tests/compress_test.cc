// Round-trip and robustness tests for the compression substrate.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/compress/registry.h"

namespace imk {
namespace {

// Structured data resembling a kernel image: repetitive opcode-like patterns,
// embedded pointers, and stretches of zeros.
Bytes MakeKernelLikeData(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data;
  data.reserve(size);
  while (data.size() < size) {
    const uint32_t kind = static_cast<uint32_t>(rng.NextBelow(10));
    if (kind < 4) {
      // Opcode-ish run: small alphabet, repeated motifs.
      const size_t run = 16 + rng.NextBelow(64);
      const uint8_t motif = static_cast<uint8_t>(rng.NextBelow(32));
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(motif + (i % 7)));
      }
    } else if (kind < 6) {
      // Pointer-like 8-byte little-endian values sharing high bits.
      const uint64_t base = 0xffffffff81000000ull + rng.NextBelow(1 << 20);
      for (int i = 0; i < 8 && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(base >> (8 * i)));
      }
    } else if (kind < 8) {
      // Zero padding.
      const size_t run = 8 + rng.NextBelow(256);
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(0);
      }
    } else {
      // Incompressible noise.
      const size_t run = 4 + rng.NextBelow(32);
      for (size_t i = 0; i < run && data.size() < size; ++i) {
        data.push_back(static_cast<uint8_t>(rng.Next()));
      }
    }
  }
  return data;
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CodecRoundTripTest, EmptyInput) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  auto compressed = (*codec)->Compress({});
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), 0);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_TRUE(decompressed->empty());
}

TEST_P(CodecRoundTripTest, SingleByte) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  const Bytes input = {0x42};
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), 1);
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(*decompressed, input);
}

TEST_P(CodecRoundTripTest, AllSameByte) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  const Bytes input(10000, 0xaa);
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  if (GetParam() != "none") {
    // Highly repetitive input must compress well.
    EXPECT_LT(compressed->size(), input.size() / 4) << GetParam();
  }
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), input.size());
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(*decompressed, input);
}

TEST_P(CodecRoundTripTest, AllByteValues) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  Bytes input;
  for (int rep = 0; rep < 5; ++rep) {
    for (int b = 0; b < 256; ++b) {
      input.push_back(static_cast<uint8_t>(b));
    }
  }
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), input.size());
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(*decompressed, input);
}

TEST_P(CodecRoundTripTest, RandomNoise) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  Rng rng(7);
  Bytes input(64 * 1024);
  for (auto& b : input) {
    b = static_cast<uint8_t>(rng.Next());
  }
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), input.size());
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(*decompressed, input);
}

TEST_P(CodecRoundTripTest, KernelLikeData) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  const Bytes input = MakeKernelLikeData(512 * 1024, 99);
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), input.size());
  ASSERT_TRUE(decompressed.ok()) << decompressed.status().ToString();
  EXPECT_EQ(*decompressed, input);
  if (GetParam() != "none") {
    EXPECT_LT(compressed->size(), input.size()) << GetParam();
  }
}

TEST_P(CodecRoundTripTest, ManySizesSweep) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  for (size_t size : {2u, 3u, 7u, 100u, 255u, 256u, 257u, 4095u, 4096u, 70000u}) {
    const Bytes input = MakeKernelLikeData(size, size);
    auto compressed = (*codec)->Compress(ByteSpan(input));
    ASSERT_TRUE(compressed.ok()) << GetParam() << " size=" << size;
    auto decompressed = (*codec)->Decompress(ByteSpan(*compressed), input.size());
    ASSERT_TRUE(decompressed.ok())
        << GetParam() << " size=" << size << ": " << decompressed.status().ToString();
    EXPECT_EQ(*decompressed, input) << GetParam() << " size=" << size;
  }
}

TEST_P(CodecRoundTripTest, TruncatedStreamFailsCleanly) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  const Bytes input = MakeKernelLikeData(32 * 1024, 5);
  auto compressed = (*codec)->Compress(ByteSpan(input));
  ASSERT_TRUE(compressed.ok());
  // Truncating the stream must produce an error (or at minimum not crash and
  // not claim success with wrong bytes).
  for (size_t cut : {compressed->size() / 2, compressed->size() - 1}) {
    ByteSpan truncated(compressed->data(), cut);
    auto decompressed = (*codec)->Decompress(truncated, input.size());
    if (decompressed.ok()) {
      EXPECT_EQ(*decompressed, input);  // only acceptable if the tail was padding
    }
  }
}

TEST_P(CodecRoundTripTest, GarbageInputDoesNotCrash) {
  auto codec = MakeCodec(GetParam());
  ASSERT_TRUE(codec.ok());
  Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes garbage(1 + rng.NextBelow(2048));
    for (auto& b : garbage) {
      b = static_cast<uint8_t>(rng.Next());
    }
    // Must not crash; success with matching size is wildly unlikely but legal.
    (void)(*codec)->Decompress(ByteSpan(garbage), 4096);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest,
                         ::testing::Values("none", "lz4", "lzo", "gzip", "zstd", "bzip2", "xz"),
                         [](const ::testing::TestParamInfo<std::string>& param_info) {
                           return param_info.param;
                         });

TEST(CodecRegistryTest, UnknownNameFails) {
  auto codec = MakeCodec("snappy");
  EXPECT_FALSE(codec.ok());
  EXPECT_EQ(codec.status().code(), ErrorCode::kNotFound);
}

TEST(CodecRegistryTest, BakeoffListHasSixSchemes) {
  const auto names = BakeoffCodecNames();
  EXPECT_EQ(names.size(), 6u);
  for (const auto& name : names) {
    EXPECT_TRUE(MakeCodec(name).ok()) << name;
  }
}

// The paper picks LZ4 because it decompresses fastest; verify the ratio
// ordering our DESIGN.md promises: xz/bzip2 compress kernel-like data at
// least as well as lz4/lzo.
TEST(CodecShapeTest, RatioOrdering) {
  const Bytes input = MakeKernelLikeData(1024 * 1024, 3);
  auto ratio = [&](const std::string& name) {
    auto codec = MakeCodec(name);
    auto compressed = (*codec)->Compress(ByteSpan(input));
    return static_cast<double>(compressed->size());
  };
  const double lz4 = ratio("lz4");
  const double lzo = ratio("lzo");
  const double gzip = ratio("gzip");
  const double xz = ratio("xz");
  EXPECT_LT(gzip, lzo);
  EXPECT_LT(xz, lz4);
  EXPECT_LT(xz, gzip * 1.15);  // xz should be at or near the best ratio
}

}  // namespace
}  // namespace imk
