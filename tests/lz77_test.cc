// Property tests for the shared LZ77 parser: tokens must reconstruct the
// input exactly and respect the configured window/length limits.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/compress/lz77.h"

namespace imk {
namespace {

Bytes Reconstruct(ByteSpan input, const std::vector<Lz77Token>& tokens) {
  Bytes out;
  for (const Lz77Token& token : tokens) {
    out.insert(out.end(), input.begin() + token.literal_start,
               input.begin() + token.literal_start + token.literal_len);
    for (uint32_t i = 0; i < token.match_len; ++i) {
      out.push_back(out[out.size() - token.match_dist]);
    }
  }
  return out;
}

Bytes RandomStructured(size_t size, uint64_t seed) {
  Rng rng(seed);
  Bytes data;
  while (data.size() < size) {
    if (rng.NextBelow(3) == 0 && !data.empty()) {
      // Repeat an earlier slice.
      const size_t start = rng.NextBelow(data.size());
      const size_t len = 1 + rng.NextBelow(std::min<size_t>(64, data.size() - start));
      for (size_t i = 0; i < len && data.size() < size; ++i) {
        data.push_back(data[start + i]);
      }
    } else {
      data.push_back(static_cast<uint8_t>(rng.Next()));
    }
  }
  return data;
}

struct Lz77Case {
  const char* name;
  Lz77Params params;
};

class Lz77ParamTest : public ::testing::TestWithParam<Lz77Case> {};

TEST_P(Lz77ParamTest, TokensReconstructInput) {
  const Lz77Params& params = GetParam().params;
  for (uint64_t seed : {1u, 2u, 3u}) {
    const Bytes input = RandomStructured(20000, seed);
    const std::vector<Lz77Token> tokens = Lz77Parse(ByteSpan(input), params);
    EXPECT_EQ(Reconstruct(ByteSpan(input), tokens), input) << GetParam().name;
  }
}

TEST_P(Lz77ParamTest, TokensRespectLimits) {
  const Lz77Params& params = GetParam().params;
  const Bytes input = RandomStructured(50000, 7);
  uint64_t cursor = 0;
  for (const Lz77Token& token : Lz77Parse(ByteSpan(input), params)) {
    EXPECT_EQ(token.literal_start + token.literal_len,
              cursor + token.literal_len);  // literals are contiguous
    cursor += token.literal_len;
    if (token.match_len != 0) {
      EXPECT_GE(token.match_len, params.min_match);
      EXPECT_LE(token.match_len, params.max_match);
      EXPECT_GE(token.match_dist, 1u);
      EXPECT_LE(token.match_dist, params.window_size);
      EXPECT_LE(token.match_dist, cursor);  // never reaches before the start
    }
    cursor += token.match_len;
  }
  EXPECT_EQ(cursor, input.size());
}

INSTANTIATE_TEST_SUITE_P(
    Variants, Lz77ParamTest,
    ::testing::Values(Lz77Case{"lz4ish", {65535, 4, 0xffffffff, 8, false}},
                      Lz77Case{"lzoish", {65535, 3, 257, 4, false}},
                      Lz77Case{"gzipish", {32 * 1024, 3, 258, 32, true}},
                      Lz77Case{"zstdish", {256 * 1024, 4, 0xffffffff, 48, true}},
                      Lz77Case{"tiny_window", {64, 3, 16, 4, false}},
                      Lz77Case{"deep_lazy", {1 << 20, 4, 4096, 128, true}}),
    [](const ::testing::TestParamInfo<Lz77Case>& info) { return info.param.name; });

TEST(Lz77Test, EmptyAndTinyInputs) {
  Lz77Params params;
  EXPECT_TRUE(Lz77Parse({}, params).empty());
  const Bytes one = {42};
  auto tokens = Lz77Parse(ByteSpan(one), params);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].literal_len, 1u);
  EXPECT_EQ(tokens[0].match_len, 0u);
}

TEST(Lz77Test, AllSameByteCompressesToOneMatch) {
  Lz77Params params;
  const Bytes input(1000, 7);
  auto tokens = Lz77Parse(ByteSpan(input), params);
  // One literal run then one (or very few) long matches.
  EXPECT_LE(tokens.size(), 4u);
  EXPECT_EQ(Reconstruct(ByteSpan(input), tokens), input);
}

}  // namespace
}  // namespace imk
