// imktrace unit drills: saturating ring overflow, nested-span
// well-formedness, concurrent emitters (run under TSan in ci_check.sh's
// trace stage), Chrome JSON exporter round-trip, the disabled path's
// zero-allocation guarantee, and the trace.buffer_full drop drill.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/mem_accounting.h"
#include "src/trace/export.h"
#include "src/trace/trace.h"

namespace imk {
namespace trace {
namespace {

// Every test runs against the process-wide tracer, so each one starts a
// fresh epoch and stops it on exit.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Instance().Stop(); }
};

class CountingAccountant : public ByteAccountant {
 public:
  void Charge(uint64_t bytes) override {
    current_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void Release(uint64_t bytes) override {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  uint64_t current_bytes() const { return current_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> current_{0};
};

TEST_F(TraceTest, RecordsSpansAndInstants) {
  Tracer::Instance().Start();
  {
    IMK_TRACE_SPAN("test", "outer");
    IMK_TRACE_INSTANT("test", "tick");
  }
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 2u);
  // Collect sorts by timestamp; the instant fires before the span closes,
  // so it sorts at or after the span's start.
  const Event* span = nullptr;
  const Event* instant = nullptr;
  for (const Event& e : events) {
    (e.kind == EventKind::kSpan ? span : instant) = &e;
  }
  ASSERT_NE(span, nullptr);
  ASSERT_NE(instant, nullptr);
  EXPECT_STREQ(span->name, "outer");
  EXPECT_STREQ(span->category, "test");
  EXPECT_EQ(span->depth, 0);
  EXPECT_EQ(span->vm_id, kNoVmId);
  EXPECT_STREQ(instant->name, "tick");
  // The instant happened inside the span's lifetime.
  EXPECT_GE(instant->ts_ns, span->ts_ns);
  EXPECT_LE(instant->ts_ns, span->ts_ns + span->dur_ns);
}

TEST_F(TraceTest, RingSaturatesAndCountsDrops) {
  TracerOptions options;
  options.ring_capacity = 16;
  Tracer::Instance().Start(options);
  for (int i = 0; i < 100; ++i) {
    IMK_TRACE_INSTANT("test", "flood");
  }
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  EXPECT_EQ(events.size(), 16u);  // saturated, never wrapped
  EXPECT_EQ(Tracer::Instance().dropped(), 84u);
  // Published slots are intact: all carry the literal we pushed.
  for (const Event& e : events) {
    EXPECT_STREQ(e.name, "flood");
  }
}

TEST_F(TraceTest, BufferFullFaultDropsWithoutCorruptingRing) {
  Tracer::Instance().Start();
  {
    IMK_TRACE_INSTANT("test", "before");
  }
  // Every emit while the fault is armed is dropped, exactly as if the ring
  // were full; previously published slots must survive untouched.
  auto plan = FaultPlan::Parse("trace.buffer_full:error:p=1.0", /*seed=*/3);
  ASSERT_TRUE(plan.ok());
  FaultInjector::Instance().Arm(*plan);
  for (int i = 0; i < 10; ++i) {
    IMK_TRACE_INSTANT("test", "lost");
  }
  FaultInjector::Instance().Disarm();
  IMK_TRACE_INSTANT("test", "after");
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "before");
  EXPECT_STREQ(events[1].name, "after");
  EXPECT_EQ(Tracer::Instance().dropped(), 10u);
}

TEST_F(TraceTest, NestedSpansAreWellFormed) {
  Tracer::Instance().Start();
  {
    IMK_TRACE_SPAN("test", "a");
    {
      IMK_TRACE_SPAN("test", "b");
      { IMK_TRACE_SPAN("test", "c"); }
    }
  }
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 3u);
  const auto find = [&](const char* name) -> const Event& {
    for (const Event& e : events) {
      if (std::strcmp(e.name, name) == 0) {
        return e;
      }
    }
    ADD_FAILURE() << "span " << name << " not recorded";
    return events[0];
  };
  const Event& a = find("a");
  const Event& b = find("b");
  const Event& c = find("c");
  EXPECT_EQ(a.depth, 0);
  EXPECT_EQ(b.depth, 1);
  EXPECT_EQ(c.depth, 2);
  // Proper nesting: each child's interval is contained in its parent's.
  EXPECT_GE(b.ts_ns, a.ts_ns);
  EXPECT_LE(b.ts_ns + b.dur_ns, a.ts_ns + a.dur_ns);
  EXPECT_GE(c.ts_ns, b.ts_ns);
  EXPECT_LE(c.ts_ns + c.dur_ns, b.ts_ns + b.dur_ns);
}

TEST_F(TraceTest, ManualSpansRecordTheBracketedStage) {
  Tracer::Instance().Start();
  const uint64_t start = SpanStart();
  IMK_TRACE_INSTANT("test", "inside");
  EmitComplete("test", "stage", start);
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 2u);
  const Event& span = events[0].kind == EventKind::kSpan ? events[0] : events[1];
  const Event& inside = events[0].kind == EventKind::kSpan ? events[1] : events[0];
  EXPECT_STREQ(span.name, "stage");
  EXPECT_GE(inside.ts_ns, span.ts_ns);
  EXPECT_LE(inside.ts_ns, span.ts_ns + span.dur_ns);
}

TEST_F(TraceTest, VmScopeTagsEventsAndRestores) {
  Tracer::Instance().Start();
  {
    IMK_TRACE_VM(7);
    IMK_TRACE_INSTANT("test", "tagged");
    {
      IMK_TRACE_VM(9);
      IMK_TRACE_INSTANT("test", "inner");
    }
    IMK_TRACE_INSTANT("test", "tagged");
  }
  IMK_TRACE_INSTANT("test", "untagged");
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].vm_id, 7u);
  EXPECT_EQ(events[1].vm_id, 9u);
  EXPECT_EQ(events[2].vm_id, 7u);
  EXPECT_EQ(events[3].vm_id, kNoVmId);
}

// Eight threads emitting concurrently while the main thread scrapes: the
// emit path is lock-free and the scrape only reads published slots, so this
// must be TSan-clean (ci_check.sh runs this suite under TSan) and lose
// nothing when the rings have room.
TEST_F(TraceTest, ConcurrentEmittersScrapeCleanly) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  TracerOptions options;
  options.ring_capacity = kPerThread + 16;
  Tracer::Instance().Start(options);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      IMK_TRACE_VM(static_cast<uint32_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        IMK_TRACE_SPAN("test", "worker");
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Scrape mid-storm: must be safe and observe only whole events.
  for (int i = 0; i < 50; ++i) {
    for (const Event& e : Tracer::Instance().Collect()) {
      ASSERT_STREQ(e.name, "worker");
      ASSERT_LT(e.vm_id, static_cast<uint32_t>(kThreads));
    }
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  EXPECT_EQ(events.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(Tracer::Instance().dropped(), 0u);
  EXPECT_EQ(Tracer::Instance().thread_count(), static_cast<size_t>(kThreads));
}

TEST_F(TraceTest, DisabledPathRegistersNoRingAndChargesNothing) {
  // Not started: every macro must be a relaxed load + fall-through. The
  // observable proxy for "no allocation" is that no ring is ever
  // registered and no bytes are ever charged.
  auto accountant = std::make_shared<CountingAccountant>();
  TracerOptions options;
  options.accountant = accountant;
  Tracer::Instance().Start(options);
  Tracer::Instance().Stop();  // enabled window closed before any emit
  for (int i = 0; i < 1000; ++i) {
    IMK_TRACE_SPAN("test", "dead");
    IMK_TRACE_INSTANT("test", "dead");
  }
  EXPECT_EQ(Tracer::Instance().thread_count(), 0u);
  EXPECT_EQ(accountant->current_bytes(), 0u);
  EXPECT_EQ(SpanStart(), 0u);  // manual spans are no-ops too
}

TEST_F(TraceTest, RingMemoryIsChargedAndReleased) {
  auto accountant = std::make_shared<CountingAccountant>();
  TracerOptions options;
  options.ring_capacity = 1024;
  options.accountant = accountant;
  Tracer::Instance().Start(options);
  IMK_TRACE_INSTANT("test", "touch");  // registers this thread's ring
  EXPECT_EQ(accountant->current_bytes(), 1024 * sizeof(Event));
  Tracer::Instance().Stop();
  // The next epoch drops the old ring; its charge is released once the
  // thread-local cache lets go (our next emit re-registers).
  Tracer::Instance().Start(options);
  IMK_TRACE_INSTANT("test", "touch");
  EXPECT_EQ(accountant->current_bytes(), 1024 * sizeof(Event));
  Tracer::Instance().Stop();
}

TEST_F(TraceTest, ChromeJsonRoundTrips) {
  TracerOptions options;
  Tracer::Instance().Start(options);
  {
    IMK_TRACE_VM(3);
    IMK_TRACE_SPAN("cat.a", "span.one");
    IMK_TRACE_INSTANT("cat.b", "tick");
  }
  Tracer::Instance().Stop();
  const std::vector<Event> events = Tracer::Instance().Collect();
  ASSERT_EQ(events.size(), 2u);
  const std::string json = ToChromeJson(events);
  auto parsed = ParseChromeJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const ParsedEvent& p = (*parsed)[i];
    const Event& e = events[i];
    EXPECT_EQ(p.name, e.name);
    EXPECT_EQ(p.category, e.category);
    EXPECT_EQ(p.ts_ns, e.ts_ns);  // exact: ns ride in args, not the µs fields
    EXPECT_EQ(p.dur_ns, e.dur_ns);
    EXPECT_EQ(p.vm_id, e.vm_id);
    EXPECT_EQ(p.tid, e.tid);
    EXPECT_EQ(p.depth, e.depth);
    EXPECT_EQ(p.kind, e.kind);
  }
}

TEST_F(TraceTest, ChromeJsonEmptyTraceParses) {
  const std::string json = ToChromeJson({});
  auto parsed = ParseChromeJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->empty());
}

}  // namespace
}  // namespace trace
}  // namespace imk
