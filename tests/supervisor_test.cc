// BootSupervisor fault drills: watchdog classification, seeded retry,
// the degradation ladder and the strict policy, cache quarantine/rebuild,
// schedule determinism, and supervised boot-storm outcome accounting.
// Every drill runs under a pinned FaultPlan seed so failures reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/stopwatch.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/relocs.h"
#include "src/trace/trace.h"
#include "src/vmm/boot_storm.h"
#include "src/vmm/boot_supervisor.h"
#include "src/vmm/image_template.h"
#include "src/vmm/mem_governor.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr double kScale = 0.008;
constexpr uint64_t kMem = 160ull << 20;

// Kernel cache shared across the suite (building is the slow part).
struct BuiltKernel {
  KernelBuildInfo info;
  Storage storage;
};

BuiltKernel& GetKernel(RandoMode rando) {
  static std::map<int, BuiltKernel>* cache = new std::map<int, BuiltKernel>();
  auto it = cache->find(static_cast<int>(rando));
  if (it != cache->end()) {
    return it->second;
  }
  BuiltKernel& built = (*cache)[static_cast<int>(rando)];
  auto result = BuildKernel(KernelConfig::Make(KernelProfile::kAws, rando, kScale));
  EXPECT_TRUE(result.ok());
  built.info = std::move(*result);
  built.storage.Put("vmlinux", built.info.vmlinux);
  if (!built.info.relocs.empty()) {
    built.storage.Put("vmlinux.relocs", SerializeRelocs(built.info.relocs));
  }
  return built;
}

MicroVmConfig BaseConfig(RandoMode rando, ImageTemplateCache* cache) {
  MicroVmConfig config;
  config.mem_size_bytes = kMem;
  config.kernel_image = "vmlinux";
  config.rando = rando;
  if (rando != RandoMode::kNone) {
    config.relocs_image = "vmlinux.relocs";
  }
  config.seed = 42;
  config.template_cache = cache;  // never share the process-global cache
  return config;
}

FaultPlan Plan(const char* spec, uint64_t seed = 1) {
  auto plan = FaultPlan::Parse(spec, seed);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

// ---- retry ----

TEST(BootSupervisorTest, CleanBootSucceedsFirstTry) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.final_mode, RandoMode::kKaslr);
  EXPECT_EQ(outcome.degradations, 0u);
  EXPECT_EQ(outcome.watchdog_trips, 0u);
  EXPECT_FALSE(outcome.degraded());
  ASSERT_TRUE(outcome.report.has_value());
  EXPECT_TRUE(outcome.report->init_done);
  ASSERT_NE(supervisor.vm(), nullptr);
}

TEST(BootSupervisorTest, RetriesWithFreshSeedAfterTransientFault) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  FaultScope faults(Plan("loader.reloc:error:n=1:max=1"));
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.final_mode, RandoMode::kKaslr);  // same rung, not degraded
  EXPECT_EQ(outcome.degradations, 0u);
  ASSERT_EQ(outcome.history.size(), 2u);
  EXPECT_EQ(outcome.history[0].result, AttemptResult::kError);
  EXPECT_EQ(outcome.history[1].result, AttemptResult::kOk);
  // The retry drew a fresh randomization seed.
  EXPECT_NE(outcome.history[0].seed, outcome.history[1].seed);
}

// ---- degradation ladder ----

TEST(BootSupervisorTest, PersistentRelocFaultWalksTheFullLadder) {
  BuiltKernel& kernel = GetKernel(RandoMode::kFgKaslr);
  ImageTemplateCache cache;
  // Every relocation pass fails -> fgkaslr and kaslr rungs are unbootable;
  // nokaslr skips relocation entirely and must still come up.
  FaultScope faults(Plan("loader.reloc:error"));
  SupervisorOptions options;
  options.max_retries = 1;
  options.expected_checksum = kernel.info.expected_checksum;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kFgKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.requested, RandoMode::kFgKaslr);
  EXPECT_EQ(outcome.final_mode, RandoMode::kNone);
  EXPECT_EQ(outcome.degradations, 2u);
  EXPECT_TRUE(outcome.degraded());
  // 2 failed attempts per hardened rung, then nokaslr boots first try.
  EXPECT_EQ(outcome.attempts, 5u);
  ASSERT_EQ(outcome.history.size(), 5u);
  EXPECT_EQ(outcome.history[0].mode, RandoMode::kFgKaslr);
  EXPECT_EQ(outcome.history[2].mode, RandoMode::kKaslr);
  EXPECT_EQ(outcome.history[4].mode, RandoMode::kNone);
  EXPECT_EQ(outcome.history[4].result, AttemptResult::kOk);
}

// Trace drill: a full ladder walk under the tracer emits EXACTLY one
// supervisor.rung span per accounted attempt — no more (double emission),
// no fewer (an attempt path that skips the span), rejected-at-admission
// attempts included by contract.
TEST(BootSupervisorTest, EachAttemptEmitsExactlyOneRungSpan) {
  BuiltKernel& kernel = GetKernel(RandoMode::kFgKaslr);
  ImageTemplateCache cache;
  FaultScope faults(Plan("loader.reloc:error"));
  SupervisorOptions options;
  options.max_retries = 1;
  options.expected_checksum = kernel.info.expected_checksum;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kFgKaslr, &cache), options);
  trace::Tracer::Instance().Start();
  BootOutcome outcome = supervisor.Run();
  trace::Tracer::Instance().Stop();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 5u);  // the full-ladder walk drilled above
  uint32_t rung_spans = 0;
  for (const trace::Event& event : trace::Tracer::Instance().Collect()) {
    if (std::string(event.name) == "supervisor.rung") {
      EXPECT_EQ(event.kind, trace::EventKind::kSpan);
      ++rung_spans;
    }
  }
  EXPECT_EQ(rung_spans, outcome.attempts);
  EXPECT_EQ(rung_spans, static_cast<uint32_t>(outcome.history.size()));
}

TEST(BootSupervisorTest, StrictPolicyRefusesToDegrade) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  FaultScope faults(Plan("loader.reloc:error"));
  SupervisorOptions options;
  options.max_retries = 2;
  options.policy = DegradePolicy::kStrict;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  EXPECT_FALSE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 3u);  // first try + 2 retries, no second rung
  EXPECT_EQ(outcome.degradations, 0u);
  for (const AttemptRecord& attempt : outcome.history) {
    EXPECT_EQ(attempt.mode, RandoMode::kKaslr);
    EXPECT_EQ(attempt.result, AttemptResult::kError);
  }
  EXPECT_FALSE(outcome.final_status.ok());
  EXPECT_EQ(supervisor.vm(), nullptr);
}

// ---- watchdogs ----

TEST(BootSupervisorTest, WallClockWatchdogTripsAndRetrySucceeds) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;

  // Calibrate the deadline against this build/machine (sanitizers and a
  // loaded CI core can slow a clean boot by an order of magnitude): the
  // watchdog gets 8x a measured clean boot, the injected stall 5x the
  // watchdog, so attempt 0 always trips and the clean retry never does.
  Stopwatch calib_timer;
  {
    BootSupervisor calib(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
    ASSERT_TRUE(calib.Run().ok);
  }
  const uint64_t watchdog_ms =
      std::max<uint64_t>(100, 8 * calib_timer.ElapsedNs() / 1000000);

  FaultPlan plan;
  FaultRule stall;
  stall.point = "vcpu.enter";
  stall.flavor = FaultFlavor::kDelay;
  stall.nth = 1;
  stall.max_fires = 1;
  stall.delay_us = watchdog_ms * 5000;
  plan.rules.push_back(stall);
  FaultScope faults(plan);

  options.watchdog_wall_ms = watchdog_ms;
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 2u);
  EXPECT_EQ(outcome.watchdog_trips, 1u);
  EXPECT_EQ(outcome.history[0].result, AttemptResult::kWatchdogWall);
  EXPECT_EQ(outcome.history[1].result, AttemptResult::kOk);
}

TEST(BootSupervisorTest, InstructionBudgetWatchdogIsClassified) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  SupervisorOptions options;
  options.max_retries = 0;
  options.policy = DegradePolicy::kStrict;
  options.watchdog_instructions = 1000;  // far below what guest init needs
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  EXPECT_FALSE(outcome.ok) << outcome.ToString();
  ASSERT_EQ(outcome.history.size(), 1u);
  EXPECT_EQ(outcome.history[0].result, AttemptResult::kWatchdogInstructions);
  EXPECT_EQ(outcome.watchdog_trips, 1u);
  EXPECT_EQ(outcome.final_status.code(), ErrorCode::kDeadlineExceeded);
}

// ---- cache integrity ----

TEST(BootSupervisorTest, CorruptCacheHitIsQuarantinedAndRebuilt) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  cache.set_integrity_mode(ImageTemplateCache::IntegrityMode::kFull);

  // Warm the cache with one clean supervised boot.
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;
  {
    BootSupervisor warm(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
    ASSERT_TRUE(warm.Run().ok);
  }
  ASSERT_EQ(cache.misses(), 1u);
  ASSERT_EQ(cache.quarantined(), 0u);

  // The next hit hands out a template whose shared pristine bytes rot in
  // flight; full-integrity verification must catch it on that same hit,
  // quarantine the entry, and rebuild — the boot itself stays clean.
  FaultScope faults(Plan("template.cache_hit:corrupt:n=1:max=1:bytes=8"));
  BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 1u);  // recovery is transparent to the boot
  EXPECT_EQ(cache.quarantined(), 1u);
  EXPECT_EQ(cache.misses(), 2u);  // initial build + rebuild after quarantine
  ASSERT_TRUE(outcome.report.has_value());
  EXPECT_EQ(outcome.report->init_checksum, kernel.info.expected_checksum);
}

// ---- determinism ----

TEST(BootSupervisorTest, IdenticalSeedsReplayIdenticalHistories) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  const FaultPlan plan = Plan("loader.reloc:error:n=1:max=1", 77);
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;

  std::vector<AttemptRecord> histories[2];
  for (auto& history : histories) {
    ImageTemplateCache cache;
    FaultScope faults(plan);  // re-arm: fault schedule restarts
    BootSupervisor supervisor(kernel.storage, BaseConfig(RandoMode::kKaslr, &cache), options);
    BootOutcome outcome = supervisor.Run();
    ASSERT_TRUE(outcome.ok) << outcome.ToString();
    history = outcome.history;
  }
  ASSERT_EQ(histories[0].size(), histories[1].size());
  for (size_t i = 0; i < histories[0].size(); ++i) {
    EXPECT_EQ(histories[0][i].mode, histories[1][i].mode);
    EXPECT_EQ(histories[0][i].seed, histories[1][i].seed);
    EXPECT_EQ(histories[0][i].result, histories[1][i].result);
  }
}

// ---- memory governance ----

TEST(BootSupervisorTest, MemRejectionAndBootFaultAreBothAccounted) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;

  // Combined drill: attempt 0 is bounced at the (synthetic) hard watermark
  // before any boot work, attempt 1 is admitted but dies in relocation,
  // attempt 2 boots clean. Every attempt — rejected or failed — must land in
  // the history with its own classification and consume one retry.
  FaultScope faults(
      Plan("mem.pressure_hard:error:n=1:max=1;loader.reloc:error:n=1:max=1"));
  MemGovernor governor;  // accounting-only: no budget, fault-driven denial
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;
  options.admit_wait_ms = 0;  // one admission poll per attempt: no re-poll
  MicroVmConfig config = BaseConfig(RandoMode::kKaslr, &cache);
  config.mem_governor = &governor;
  BootSupervisor supervisor(kernel.storage, config, options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_EQ(outcome.mem_rejections, 1u);
  EXPECT_EQ(outcome.degradations, 0u);
  ASSERT_EQ(outcome.history.size(), 3u);
  EXPECT_EQ(outcome.history[0].result, AttemptResult::kRejectedMemPressure);
  EXPECT_EQ(outcome.history[1].result, AttemptResult::kError);
  EXPECT_EQ(outcome.history[2].result, AttemptResult::kOk);
  // The rejection stayed on the requested rung (it is backpressure, not a
  // boot failure) and the retry after it drew a fresh seed as usual.
  for (const AttemptRecord& attempt : outcome.history) {
    EXPECT_EQ(attempt.mode, RandoMode::kKaslr);
  }
  EXPECT_NE(outcome.history[1].seed, outcome.history[2].seed);
  const MemGovernor::Stats stats = governor.stats();
  EXPECT_EQ(stats.admit_rejects, 1u);
  EXPECT_EQ(stats.admits, 2u);
}

TEST(BootSupervisorTest, SustainedHardPressureRejectsEveryAttempt) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;

  MemGovernorOptions gov_options;
  gov_options.budget_bytes = 1ull << 20;
  MemGovernor governor(gov_options);
  // Pin the fleet over the hard watermark with bytes no ladder can shed
  // (there are no reclaimable hooks registered).
  governor.Charge(MemCategory::kGuestFrames, 2ull << 20);

  SupervisorOptions options;
  options.max_retries = 1;
  options.policy = DegradePolicy::kStrict;
  options.admit_wait_ms = 1;
  MicroVmConfig config = BaseConfig(RandoMode::kKaslr, &cache);
  config.mem_governor = &governor;
  {
    BootSupervisor supervisor(kernel.storage, config, options);
    BootOutcome outcome = supervisor.Run();
    EXPECT_FALSE(outcome.ok) << outcome.ToString();
    // Strict keeps the requested rung plus the same-mode pressure rung:
    // 2 rungs x (1 + max_retries) attempts, every one bounced.
    EXPECT_EQ(outcome.attempts, 4u);
    EXPECT_EQ(outcome.mem_rejections, outcome.attempts);
    EXPECT_EQ(outcome.degradations, 0u);
    ASSERT_EQ(outcome.history.size(), 4u);
    for (const AttemptRecord& attempt : outcome.history) {
      EXPECT_EQ(attempt.result, AttemptResult::kRejectedMemPressure);
      EXPECT_EQ(attempt.mode, RandoMode::kKaslr);
    }
    EXPECT_FALSE(outcome.history[0].caches_off);
    EXPECT_FALSE(outcome.history[1].caches_off);
    EXPECT_TRUE(outcome.history[2].caches_off);
    EXPECT_TRUE(outcome.history[3].caches_off);
    EXPECT_EQ(outcome.final_status.code(), ErrorCode::kResourceExhausted);
    EXPECT_EQ(supervisor.vm(), nullptr);
  }

  // Releasing the pinned bytes reopens admission: the same config boots.
  governor.Release(MemCategory::kGuestFrames, 2ull << 20);
  options.expected_checksum = kernel.info.expected_checksum;
  BootSupervisor supervisor(kernel.storage, config, options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.mem_rejections, 0u);
}

TEST(BootSupervisorTest, PressureRungBootsWithSharedCachesOff) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  ImageTemplateCache cache;
  MemGovernor governor;
  SupervisorOptions options;
  options.expected_checksum = kernel.info.expected_checksum;

  // Warm the shared template cache so a cached attempt would take the hit
  // path — the caches-off boot below must leave the hit counter at zero.
  {
    MicroVmConfig warm_config = BaseConfig(RandoMode::kKaslr, &cache);
    BootSupervisor warm(kernel.storage, warm_config, options);
    ASSERT_TRUE(warm.Run().ok);
  }
  ASSERT_EQ(cache.misses(), 1u);
  ASSERT_EQ(cache.hits(), 0u);

  // Synthetic hard pressure bounces both attempts of the cached rung (one
  // rule per admission poll: `n=` fires on exactly the nth hit); the
  // governed pressure rung then boots the SAME mode with shared caches off —
  // permitted under kStrict because it trades no hardening.
  FaultScope faults(
      Plan("mem.pressure_hard:error:n=1:max=1;mem.pressure_hard:error:n=2:max=1"));
  options.max_retries = 1;
  options.policy = DegradePolicy::kStrict;
  options.admit_wait_ms = 0;  // one admission poll per attempt
  MicroVmConfig config = BaseConfig(RandoMode::kKaslr, &cache);
  config.mem_governor = &governor;
  BootSupervisor supervisor(kernel.storage, config, options);
  BootOutcome outcome = supervisor.Run();
  ASSERT_TRUE(outcome.ok) << outcome.ToString();
  EXPECT_EQ(outcome.final_mode, RandoMode::kKaslr);
  EXPECT_EQ(outcome.degradations, 0u);
  EXPECT_EQ(outcome.mem_rejections, 2u);
  EXPECT_EQ(outcome.attempts, 3u);  // 2 bounced cached attempts + 1 caches-off boot
  ASSERT_EQ(outcome.history.size(), 3u);
  EXPECT_FALSE(outcome.history[0].caches_off);
  EXPECT_FALSE(outcome.history[1].caches_off);
  EXPECT_EQ(outcome.history[0].result, AttemptResult::kRejectedMemPressure);
  EXPECT_EQ(outcome.history[1].result, AttemptResult::kRejectedMemPressure);
  EXPECT_TRUE(outcome.history[2].caches_off);
  EXPECT_EQ(outcome.history[2].result, AttemptResult::kOk);
  // The winning boot really bypassed the warm shared cache.
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  ASSERT_TRUE(outcome.report.has_value());
  EXPECT_EQ(outcome.report->init_checksum, kernel.info.expected_checksum);
}

// ---- supervised boot storm ----

TEST(SupervisedStormTest, FaultFreeSupervisionPreservesLayoutsAndTallies) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  const Bytes relocs_blob = SerializeRelocs(kernel.info.relocs);

  StormOptions options;
  options.vms = 4;
  options.threads = 2;
  options.rando = RandoMode::kKaslr;
  options.mem_size_bytes = kMem;
  options.expected_checksum = kernel.info.expected_checksum;
  options.keep_kernel_regions = true;
  options.seed_base = 99;

  auto plain = RunBootStorm(ByteSpan(kernel.info.vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  options.supervise = true;
  auto supervised = RunBootStorm(ByteSpan(kernel.info.vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(supervised.ok()) << supervised.status().ToString();

  // Supervision is a wrapper: with no faults it must not disturb layouts.
  ASSERT_EQ(supervised->kernel_regions.size(), plain->kernel_regions.size());
  for (size_t i = 0; i < plain->kernel_regions.size(); ++i) {
    EXPECT_EQ(supervised->kernel_regions[i], plain->kernel_regions[i]) << "VM " << i;
  }
  const StormStats::OutcomeTally& tally = supervised->outcomes;
  EXPECT_EQ(tally.accounted(), options.vms);
  EXPECT_EQ(tally.ok_first_try, options.vms);
  EXPECT_EQ(tally.failed, 0u);
  EXPECT_EQ(tally.watchdog_trips, 0u);
  EXPECT_EQ(tally.faults_injected, 0u);
}

TEST(SupervisedStormTest, InjectedFailureIsRetriedNotFatal) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  const Bytes relocs_blob = SerializeRelocs(kernel.info.relocs);

  StormOptions options;
  options.vms = 6;
  options.threads = 1;  // serial: the global fault-hit order is the VM order
  options.warmup_per_thread = 0;
  options.rando = RandoMode::kKaslr;
  options.mem_size_bytes = kMem;
  options.expected_checksum = kernel.info.expected_checksum;
  options.seed_base = 5;
  options.supervise = true;

  // Exactly the third relocation pass fails: VM 2's first attempt. The storm
  // must absorb it as one retried VM, not abort.
  FaultScope faults(Plan("loader.reloc:error:n=3:max=1"));
  auto storm = RunBootStorm(ByteSpan(kernel.info.vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();

  const StormStats::OutcomeTally& tally = storm->outcomes;
  EXPECT_EQ(tally.accounted(), options.vms);
  EXPECT_EQ(tally.ok_first_try, options.vms - 1);
  EXPECT_EQ(tally.ok_retried, 1u);
  EXPECT_EQ(tally.ok_degraded, 0u);
  EXPECT_EQ(tally.failed, 0u);
  EXPECT_EQ(tally.attempts_total, options.vms + 1);
  EXPECT_EQ(tally.faults_injected, 1u);
  // Failed attempts never leak into the latency samples.
  EXPECT_EQ(storm->boot_ms.count(), options.vms);
}

TEST(SupervisedStormTest, HardPressureRejectionsAreTalliedPerLaunch) {
  BuiltKernel& kernel = GetKernel(RandoMode::kKaslr);
  const Bytes relocs_blob = SerializeRelocs(kernel.info.relocs);

  // An external governor pinned over its hard watermark: every churned
  // launch must be turned away at admission and land in the rejected_mem
  // bucket — accounted() still covers every launch, nothing is dropped.
  MemGovernorOptions gov_options;
  gov_options.budget_bytes = 1ull << 20;
  MemGovernor governor(gov_options);
  governor.Charge(MemCategory::kGuestFrames, 2ull << 20);

  StormOptions options;
  options.vms = 4;
  options.threads = 2;
  options.churn_cycles = 2;
  options.warmup_per_thread = 0;
  options.rando = RandoMode::kKaslr;
  options.mem_size_bytes = kMem;
  options.seed_base = 7;
  options.supervise = true;
  options.max_retries = 0;
  options.admit_wait_ms = 1;
  options.governor = &governor;

  auto storm = RunBootStorm(ByteSpan(kernel.info.vmlinux), ByteSpan(relocs_blob), options);
  ASSERT_TRUE(storm.ok()) << storm.status().ToString();

  const uint32_t launches = options.vms * options.churn_cycles;
  EXPECT_EQ(storm->launches, launches);
  const StormStats::OutcomeTally& tally = storm->outcomes;
  EXPECT_EQ(tally.accounted(), launches);
  EXPECT_EQ(tally.rejected_mem, launches);
  EXPECT_EQ(tally.ok_first_try, 0u);
  EXPECT_EQ(tally.failed, 0u);
  // Every supervised attempt was an admission bounce, and each one is
  // visible at attempt granularity too.
  EXPECT_EQ(tally.mem_rejected_attempts, tally.attempts_total);
  EXPECT_GT(tally.attempts_total, 0u);
  EXPECT_EQ(storm->boot_ms.count(), 0u);
  ASSERT_TRUE(storm->mem.has_value());
  EXPECT_GE(storm->mem->admit_rejects, launches);
}

}  // namespace
}  // namespace imk
