// Security-property tests: what does randomization actually buy an attacker
// (paper §3.1)? These encode the attack_sim example's findings as invariants:
// a single leaked function pointer derandomizes a KASLR kernel completely but
// an FGKASLR kernel only at the leaked function itself.
#include <set>

#include <gtest/gtest.h>

#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr uint64_t kMem = 160ull << 20;
constexpr double kScale = 0.01;

struct AttackSetup {
  KernelBuildInfo info;
  Storage storage;

  explicit AttackSetup(RandoMode rando) {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, kScale));
    EXPECT_TRUE(built.ok());
    info = std::move(*built);
    storage.Put("vmlinux", info.vmlinux);
    if (!info.relocs.empty()) {
      storage.Put("vmlinux.relocs", SerializeRelocs(info.relocs));
    }
  }

  // Boots, leaks the runtime address of indirect function 0 through the
  // pointer table (a data leak), and returns whether a link-layout-based
  // guess for `victim` succeeds.
  bool OneLeakguessHitsVictim(RandoMode rando, uint64_t seed, uint32_t victim_index) {
    const FunctionInfo& victim = info.functions[victim_index];
    MicroVmConfig config;
    config.mem_size_bytes = kMem;
    config.kernel_image = "vmlinux";
    if (!info.relocs.empty()) {
      config.relocs_image = "vmlinux.relocs";
    }
    config.rando = rando;
    config.seed = seed;
    MicroVm vm(storage, config);
    auto report = vm.Boot();
    EXPECT_TRUE(report.ok());

    const FunctionInfo& leaked_fn = info.functions[info.indirect_base];
    const uint64_t table_phys =
        report->choice.phys_load_addr + (info.fn_table_vaddr - info.text_vaddr);
    auto entry = vm.memory().Slice(table_phys, 8);
    EXPECT_TRUE(entry.ok());
    const uint64_t leaked_runtime = LoadLe64(entry->data());

    const uint64_t inferred_slide = leaked_runtime - leaked_fn.vaddr;
    const uint64_t guess = victim.vaddr + inferred_slide;

    // Ground truth for the victim: ask the guest's own (fixed-up) kallsyms
    // which function lives at the guess. We instead check directly against
    // the true runtime address: for unshuffled kernels it is link + slide;
    // for FGKASLR the monitor's report is authoritative. Use the selftest on
    // the LEAKED function to confirm the leak itself was coherent, then test
    // the guess by scanning guest memory for the victim's entry bytes.
    const uint64_t victim_phys_link =
        report->choice.phys_load_addr + (victim.vaddr - info.text_vaddr);
    auto at_link_pos = vm.memory().Slice(victim_phys_link, 8);
    EXPECT_TRUE(at_link_pos.ok());
    // If the kernel was shuffled, the victim is NOT at its link-relative
    // position. Verify the guess by resolving guess -> phys through the
    // kernel mapping and comparing against the known first instruction the
    // builder emits for chain functions (AddI r0, const) with the victim's
    // own constant — i.e. would the attacker's ROP target actually be the
    // victim's entry?
    const uint64_t guess_phys =
        report->choice.phys_load_addr + (guess - (info.text_vaddr + report->choice.virt_slide));
    auto guess_bytes = vm.memory().Slice(guess_phys, 6);
    if (!guess_bytes.ok()) {
      return false;  // guess fell outside the kernel: clean miss
    }
    // Chain function prologue: AddI(0, FnConst(i)) = opcode 0x0e, reg 0.
    const uint64_t expected_const = (uint64_t{victim_index} * 2654435761u) & 0xffff;
    const uint8_t* p = guess_bytes->data();
    return p[0] == 0x0e && p[1] == 0 && LoadLe32(p + 2) == expected_const;
  }
};

TEST(SecurityTest, KaslrFallsToOneLeak) {
  AttackSetup setup(RandoMode::kKaslr);
  const uint32_t victim_index = static_cast<uint32_t>(setup.info.functions.size() / 3);
  int hits = 0;
  for (uint64_t seed = 100; seed < 110; ++seed) {
    hits += setup.OneLeakguessHitsVictim(RandoMode::kKaslr, seed, victim_index) ? 1 : 0;
  }
  EXPECT_EQ(hits, 10) << "one leak must reveal the whole KASLR kernel (3.1)";
}

TEST(SecurityTest, FgKaslrSurvivesOneLeak) {
  AttackSetup setup(RandoMode::kFgKaslr);
  const uint32_t victim_index = static_cast<uint32_t>(setup.info.functions.size() / 3);
  int hits = 0;
  for (uint64_t seed = 200; seed < 210; ++seed) {
    hits += setup.OneLeakguessHitsVictim(RandoMode::kFgKaslr, seed, victim_index) ? 1 : 0;
  }
  EXPECT_LE(hits, 1) << "FGKASLR must not be derandomized by a single unrelated leak";
}

TEST(SecurityTest, SlidesAreUnpredictableAcrossHostEntropyBoots) {
  // With seed 0 the monitor pulls from the host entropy pool; successive
  // instances must not repeat layouts (the serverless story of 3.1).
  AttackSetup setup(RandoMode::kKaslr);
  std::set<uint64_t> slides;
  for (int i = 0; i < 6; ++i) {
    MicroVmConfig config;
    config.mem_size_bytes = kMem;
    config.kernel_image = "vmlinux";
    config.relocs_image = "vmlinux.relocs";
    config.rando = RandoMode::kKaslr;
    config.seed = 0;  // host entropy
    MicroVm vm(setup.storage, config);
    auto report = vm.Boot();
    ASSERT_TRUE(report.ok());
    slides.insert(report->choice.virt_slide);
  }
  EXPECT_GE(slides.size(), 5u);
}

}  // namespace
}  // namespace imk
