// Predecoded block-cache engine tests: bit-identity against the legacy
// switch-loop interpreter (registers, memory, stats, i-cache model),
// self-modifying-code invalidation through the frame-version protocol, the
// interp.blockcache:corrupt grab-time integrity drill, and a multi-threaded
// SharedBlockCache storm (suite names carry "BlockCache" so the TSan and
// race-audit CI filters pick them up).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/fault_injection.h"
#include "src/base/frame_store.h"
#include "src/isa/assembler.h"
#include "src/isa/block_cache.h"
#include "src/isa/icache.h"
#include "src/isa/interpreter.h"
#include "src/isa/isa.h"

namespace imk {
namespace {

constexpr uint64_t kCodeVaddr = 0x10000;
constexpr uint64_t kRamSize = 1 << 20;
constexpr uint64_t kStackTop = kRamSize - 16;

// Everything one engine run produces: the Run() result (or fault status),
// final register file, and final guest memory.
struct EngineRun {
  Result<RunResult> result{RunResult{}};
  std::array<uint64_t, 16> regs{};
  std::vector<uint8_t> ram;
};

EngineRun RunEngine(const Bytes& code, bool block_cache, uint64_t max_instructions,
                    IcacheModel* icache) {
  EngineRun out;
  out.ram.assign(kRamSize, 0);
  std::copy(code.begin(), code.end(), out.ram.begin() + kCodeVaddr);
  LinearMap map;
  map.virt_start = 0;
  map.phys_start = 0;
  map.size = kRamSize;
  Interpreter interp(MutableByteSpan(out.ram), map);
  interp.set_block_cache(block_cache);
  if (icache != nullptr) {
    interp.set_icache(icache);
  }
  out.result = interp.Run(kCodeVaddr, kStackTop, max_instructions);
  for (int i = 0; i < 16; ++i) {
    out.regs[static_cast<size_t>(i)] = interp.reg(i);
  }
  return out;
}

// Runs `code` under both engines and asserts bit-identical outcomes:
// status, stop reason, architectural stats, registers, and all of RAM.
void ExpectBitIdentical(const Bytes& code, uint64_t max_instructions = 1 << 20,
                        bool with_icache = false) {
  IcacheModel legacy_icache{IcacheConfig{}};
  IcacheModel block_icache{IcacheConfig{}};
  EngineRun legacy = RunEngine(code, /*block_cache=*/false, max_instructions,
                               with_icache ? &legacy_icache : nullptr);
  EngineRun block = RunEngine(code, /*block_cache=*/true, max_instructions,
                              with_icache ? &block_icache : nullptr);

  ASSERT_EQ(legacy.result.ok(), block.result.ok())
      << "legacy: " << legacy.result.status().ToString()
      << " block: " << block.result.status().ToString();
  if (!legacy.result.ok()) {
    EXPECT_EQ(legacy.result.status().ToString(), block.result.status().ToString());
  } else {
    EXPECT_EQ(legacy.result->reason, block.result->reason);
    EXPECT_EQ(legacy.result->stats.instructions, block.result->stats.instructions);
    EXPECT_EQ(legacy.result->stats.icache_hits, block.result->stats.icache_hits);
    EXPECT_EQ(legacy.result->stats.icache_misses, block.result->stats.icache_misses);
    EXPECT_EQ(legacy.result->stats.cycles, block.result->stats.cycles);
    // The legacy engine never touches the block-cache counters.
    EXPECT_EQ(legacy.result->stats.block_cache_hits, 0u);
    EXPECT_EQ(legacy.result->stats.block_cache_misses, 0u);
    EXPECT_EQ(legacy.result->stats.blocks_shared + legacy.result->stats.blocks_private, 0u);
  }
  if (with_icache) {
    EXPECT_EQ(legacy_icache.hits(), block_icache.hits());
    EXPECT_EQ(legacy_icache.misses(), block_icache.misses());
  }
  EXPECT_EQ(legacy.regs, block.regs);
  EXPECT_EQ(legacy.ram, block.ram);
}

// A program touching every structural uop class: ALU, loads/stores, a loop
// with both taken and fall-through branches, call/ret, push/pop, and RDPC.
Bytes KitchenSinkProgram() {
  Assembler a(kCodeVaddr);
  // r1 = sum of 0..99 via a loop.
  a.LoadI(0, 0);
  a.LoadI(1, 0);
  a.LoadI(2, 100);
  auto loop = a.NewLabel();
  auto body = a.NewLabel();
  auto done = a.NewLabel();
  a.Bind(loop);
  a.Jlt(0, 2, body);
  a.Jmp(done);
  a.Bind(body);
  a.Add(1, 0);
  a.AddI(0, 1);
  a.Jmp(loop);
  a.Bind(done);
  // Memory traffic across several frames.
  a.LoadI(3, 0x40000);
  a.St64(3, 1, 0);
  a.St64(3, 1, 4096);
  a.Ld64(4, 3, 4096);
  a.LoadI(5, 0xab);
  a.St8(3, 5, 9000);
  a.Ld8(6, 3, 9000);
  // Stack + PC-relative machinery.
  a.Push(1);
  a.Pop(7);
  a.RdPc(8);
  a.LoadI(9, 0x5a5a);
  a.Xor(9, 1);
  a.AndI(9, 0xffff);
  a.Halt();
  return a.TakeCode();
}

TEST(BlockCacheBitIdentityTest, KitchenSinkMatchesLegacy) {
  ExpectBitIdentical(KitchenSinkProgram());
}

TEST(BlockCacheBitIdentityTest, IcacheModelAccountingMatchesLegacy) {
  ExpectBitIdentical(KitchenSinkProgram(), 1 << 20, /*with_icache=*/true);
}

TEST(BlockCacheBitIdentityTest, InstructionCapStopsMidBlock) {
  // Caps that land inside a decoded block must stop at exactly the same
  // instruction count as the legacy loop, with identical partial state.
  const Bytes code = KitchenSinkProgram();
  for (uint64_t cap : {1ull, 2ull, 3ull, 7ull, 50ull, 251ull}) {
    ExpectBitIdentical(code, cap);
  }
}

TEST(BlockCacheBitIdentityTest, InvalidOpcodeFaultsIdentically) {
  Assembler a(kCodeVaddr);
  a.LoadI(0, 7);
  Bytes code = a.TakeCode();
  code.push_back(0xee);  // no such opcode
  ExpectBitIdentical(code);
}

TEST(BlockCacheBitIdentityTest, CallRetAcrossBlocks) {
  // Call through a register so the callee lives in its own block; the
  // return lands mid-stream and must resume at the right uop boundary.
  Assembler target(kCodeVaddr + 0x200);
  target.LoadI(0, 111);
  target.Ret();
  Bytes callee = target.TakeCode();

  Assembler a(kCodeVaddr);
  a.LoadI(1, kCodeVaddr + 0x200);
  a.CallR(1);
  a.Mov(6, 0);
  a.CallR(1);
  a.Add(6, 0);  // r6 = 222
  a.Halt();
  Bytes code = a.TakeCode();
  code.resize(0x200, static_cast<uint8_t>(0));  // pad with kNop up to the callee
  code.insert(code.end(), callee.begin(), callee.end());
  ExpectBitIdentical(code);
}

TEST(BlockCacheBitIdentityTest, HotLoopReusesCachedBlocks) {
  // Sanity-check the engine is actually caching: a hot loop must be
  // dominated by block-cache hits, not fresh decodes.
  Bytes code = KitchenSinkProgram();
  EngineRun block = RunEngine(code, /*block_cache=*/true, 1 << 20, nullptr);
  ASSERT_TRUE(block.result.ok());
  const ExecStats& stats = block.result->stats;
  EXPECT_GT(stats.block_cache_hits, stats.block_cache_misses);
  EXPECT_GT(stats.blocks_private, 0u);  // flat RAM frames are dirty => private decodes
  EXPECT_EQ(stats.blocks_shared, 0u);   // no shared frames, no shared tier
}

TEST(BlockCacheSmcTest, StoreIntoCodeInvalidatesCachedBlock) {
  // The callee at +0x200 is LoadI(0, imm); Ret. The caller executes it
  // (decoding + caching the block), patches the 8-byte immediate in place,
  // and calls it again: the write must bump the code frame's version and
  // force a re-decode that sees the new bytes.
  Assembler target(kCodeVaddr + 0x200);
  target.LoadI(0, 111);
  target.Ret();
  Bytes callee = target.TakeCode();

  Assembler a(kCodeVaddr);
  a.LoadI(1, kCodeVaddr + 0x200);
  a.CallR(1);
  a.Mov(6, 0);                       // r6 = 111 (pre-patch)
  a.LoadI(2, 222);
  a.LoadI(3, kCodeVaddr + 0x200 + 2);  // LoadI imm field: [op][rd][imm64]
  a.St64(3, 2, 0);                   // patch the immediate to 222
  a.CallR(1);                        // r0 = 222 (post-patch)
  a.Halt();
  Bytes code = a.TakeCode();
  code.resize(0x200, static_cast<uint8_t>(0));
  code.insert(code.end(), callee.begin(), callee.end());

  EngineRun block = RunEngine(code, /*block_cache=*/true, 1 << 20, nullptr);
  ASSERT_TRUE(block.result.ok()) << block.result.status().ToString();
  EXPECT_EQ(block.result->reason, StopReason::kHalt);
  EXPECT_EQ(block.regs[6], 111u);
  EXPECT_EQ(block.regs[0], 222u);
  EXPECT_GE(block.result->stats.block_cache_invalidations, 1u);

  // And the whole run is still bit-identical to the legacy engine.
  ExpectBitIdentical(code);
}

// ---- shared tier over CoW guest memory ----

// One frame of immutable "template" code: sums 0..(r2-1) into r1, stores the
// result at 0x80000, halts. Loaded via FrameStore::MapShared so the code
// frame is kShared and decoded blocks are eligible for the shared tier.
std::shared_ptr<std::vector<uint8_t>> TemplateFrame() {
  Assembler a(kCodeVaddr);
  a.LoadI(0, 0);
  a.LoadI(1, 0);
  a.LoadI(2, 100);
  auto loop = a.NewLabel();
  auto body = a.NewLabel();
  auto done = a.NewLabel();
  a.Bind(loop);
  a.Jlt(0, 2, body);
  a.Jmp(done);
  a.Bind(body);
  a.Add(1, 0);
  a.AddI(0, 1);
  a.Jmp(loop);
  a.Bind(done);
  a.LoadI(3, 0x80000);
  a.St64(3, 1, 0);
  a.Halt();
  Bytes code = a.TakeCode();
  auto frame = std::make_shared<std::vector<uint8_t>>(FrameStore::kFrameBytes, 0);
  std::copy(code.begin(), code.end(), frame->begin());
  return frame;
}

// Boots one "VM": a private CoW FrameStore aliasing the shared template
// frame at kCodeVaddr, wired to `shared`. Returns the final ExecStats.
ExecStats RunTemplateVm(const std::shared_ptr<std::vector<uint8_t>>& tmpl,
                        SharedBlockCache* shared, uint64_t* out_sum,
                        uint64_t layout_key = 0) {
  FrameStore store(kRamSize);
  Status mapped = store.MapShared(kCodeVaddr, ByteSpan(*tmpl), tmpl);
  EXPECT_TRUE(mapped.ok()) << mapped.ToString();
  LinearMap map;
  map.virt_start = 0;
  map.phys_start = 0;
  map.size = kRamSize;
  Interpreter interp(store, map);
  interp.set_shared_block_cache(shared);
  interp.set_layout_key(layout_key);
  auto result = interp.Run(kCodeVaddr, kStackTop, 1 << 20);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) {
    return ExecStats{};
  }
  EXPECT_EQ(result->reason, StopReason::kHalt);
  uint64_t sum = 0;
  EXPECT_TRUE(store.Read(0x80000, reinterpret_cast<uint8_t*>(&sum), sizeof(sum)).ok());
  *out_sum = sum;
  return result->stats;
}

TEST(BlockCacheSharedTest, SecondVmGrabsFirstVmsDecodes) {
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  uint64_t sum1 = 0;
  uint64_t sum2 = 0;
  ExecStats first = RunTemplateVm(tmpl, &shared, &sum1);
  ExecStats second = RunTemplateVm(tmpl, &shared, &sum2);
  EXPECT_EQ(sum1, 4950u);
  EXPECT_EQ(sum2, 4950u);
  // Identical guest work under both provenances.
  EXPECT_EQ(first.instructions, second.instructions);
  // All code sits in the one shared frame: every decode goes through the
  // shared tier, none are private.
  EXPECT_GT(first.blocks_shared, 0u);
  EXPECT_EQ(first.blocks_private, 0u);
  EXPECT_EQ(second.blocks_shared, first.blocks_shared);
  SharedBlockCache::Stats stats = shared.stats();
  EXPECT_GT(stats.blocks, 0u);
  // VM 1 missed on every block it published; VM 2 grabbed them all.
  EXPECT_GE(stats.hits, first.blocks_shared);
  EXPECT_GE(stats.misses, first.blocks_shared);
  EXPECT_EQ(stats.stale_replaced, 0u);
}

TEST(BlockCacheSharedTest, ConcurrentStormOverOneSharedCache) {
  // The race-audit / TSan drill: many VMs on many threads hammering one
  // SharedBlockCache (first-wins Install racing Grab). Every VM must
  // compute the same sum, and the shared tier must end with the same
  // resident blocks a solo run produces.
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  constexpr int kThreads = 4;
  constexpr int kVmsPerThread = 8;
  std::array<uint64_t, kThreads * kVmsPerThread> sums{};
  std::array<uint64_t, kThreads> shared_blocks{};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kVmsPerThread; ++i) {
        uint64_t sum = 0;
        ExecStats stats = RunTemplateVm(tmpl, &shared, &sum);
        sums[static_cast<size_t>(t * kVmsPerThread + i)] = sum;
        shared_blocks[static_cast<size_t>(t)] = stats.blocks_shared;
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  for (uint64_t sum : sums) {
    EXPECT_EQ(sum, 4950u);
  }
  SharedBlockCache::Stats stats = shared.stats();
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_EQ(stats.blocks, shared_blocks[0]);  // every VM sees the same block set
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kVmsPerThread) * shared_blocks[0]);
}

TEST(BlockCacheSharedTest, SameLayoutKeyAdoptsWholeTable) {
  // Whole-table decode sharing: the first VM of a layout publishes its
  // shareable bindings as a table at halt; a second VM with the same layout
  // key binds the table and resolves every miss through its mutex-free
  // index, never touching the per-block grab path.
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  uint64_t sum1 = 0;
  uint64_t sum2 = 0;
  ExecStats first = RunTemplateVm(tmpl, &shared, &sum1, /*layout_key=*/42);
  SharedBlockCache::Stats after_first = shared.stats();
  EXPECT_EQ(after_first.tables, 1u);
  EXPECT_EQ(after_first.table_grabs, 0u);

  ExecStats second = RunTemplateVm(tmpl, &shared, &sum2, /*layout_key=*/42);
  EXPECT_EQ(sum1, 4950u);
  EXPECT_EQ(sum2, 4950u);
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(second.blocks_shared, first.blocks_shared);
  EXPECT_EQ(second.blocks_private, 0u);
  SharedBlockCache::Stats stats = shared.stats();
  EXPECT_EQ(stats.tables, 1u);
  EXPECT_EQ(stats.table_grabs, 1u);
  // Lazy adoption bypasses per-block grabs entirely: the tier's per-block
  // hit counter never moves.
  EXPECT_EQ(stats.hits, 0u);
}

TEST(BlockCacheSharedTest, DifferentLayoutKeysPublishSeparateTables) {
  // A different layout key finds no table, falls back to per-block grabs,
  // and publishes its own table for future VMs of that layout.
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  uint64_t sum1 = 0;
  uint64_t sum2 = 0;
  ExecStats first = RunTemplateVm(tmpl, &shared, &sum1, /*layout_key=*/42);
  ExecStats second = RunTemplateVm(tmpl, &shared, &sum2, /*layout_key=*/43);
  EXPECT_EQ(sum1, 4950u);
  EXPECT_EQ(sum2, 4950u);
  EXPECT_EQ(second.blocks_shared, first.blocks_shared);
  SharedBlockCache::Stats stats = shared.stats();
  EXPECT_EQ(stats.tables, 2u);
  EXPECT_EQ(stats.table_grabs, 0u);
  // The second VM shared per-block (grab path), not via table adoption.
  EXPECT_GE(stats.hits, second.blocks_shared);
}

TEST(BlockCacheFaultTest, CorruptDigestOnAdoptFallsBackToGrabPath) {
  // Same drill as CorruptDigestFallsBackToFreshDecode, but through table
  // adoption: every adopted entry's digest check is corrupted, so each
  // block falls back to the grab/decode path — results stay bit-identical.
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  uint64_t sum1 = 0;
  ExecStats first = RunTemplateVm(tmpl, &shared, &sum1, /*layout_key=*/42);
  ASSERT_GT(first.blocks_shared, 0u);

  auto plan = FaultPlan::Parse("interp.blockcache:corrupt:bytes=8", /*seed=*/42);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  uint64_t sum2 = 0;
  ExecStats second;
  {
    FaultScope scope(*plan);
    second = RunTemplateVm(tmpl, &shared, &sum2, /*layout_key=*/42);
  }
  EXPECT_EQ(sum1, 4950u);
  EXPECT_EQ(sum2, 4950u);
  EXPECT_EQ(second.instructions, first.instructions);
  // Every adoption failed validation and was re-resolved downstream.
  EXPECT_GE(second.block_cache_invalidations, first.blocks_shared);
}

// ---- grab-time integrity: the interp.blockcache:corrupt fault point ----

TEST(BlockCacheFaultTest, RegisteredInKnownFaultPoints) {
  const std::vector<std::string>& points = KnownFaultPoints();
  bool found = false;
  for (const std::string& point : points) {
    if (point == "interp.blockcache") {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "interp.blockcache missing from KnownFaultPoints()";
}

TEST(BlockCacheFaultTest, CorruptDigestFallsBackToFreshDecode) {
  // VM 1 populates the shared tier clean. VM 2 runs with every shared grab's
  // digest check corrupted: each grab must be rejected, re-decoded on the
  // slow path, and force-installed — degrading counters, never results.
  auto tmpl = TemplateFrame();
  SharedBlockCache shared;
  uint64_t sum1 = 0;
  ExecStats first = RunTemplateVm(tmpl, &shared, &sum1);
  ASSERT_GT(first.blocks_shared, 0u);

  auto plan = FaultPlan::Parse("interp.blockcache:corrupt:bytes=8", /*seed=*/42);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  uint64_t sum2 = 0;
  ExecStats second;
  {
    FaultScope scope(*plan);
    second = RunTemplateVm(tmpl, &shared, &sum2);
  }
  EXPECT_EQ(sum1, 4950u);
  EXPECT_EQ(sum2, 4950u);
  EXPECT_EQ(second.instructions, first.instructions);
  // Every grab failed validation: counted as invalidations, then re-decoded.
  EXPECT_GE(second.block_cache_invalidations, first.blocks_shared);
  EXPECT_GE(shared.stats().stale_replaced, first.blocks_shared);

  // A clean VM afterwards still computes the right answer from the
  // force-reinstalled blocks.
  uint64_t sum3 = 0;
  ExecStats third = RunTemplateVm(tmpl, &shared, &sum3);
  EXPECT_EQ(sum3, 4950u);
  EXPECT_EQ(third.instructions, first.instructions);
  EXPECT_EQ(third.block_cache_invalidations, 0u);
}

}  // namespace
}  // namespace imk
