// Negative lint fixture — deliberately NOT compiled and NOT part of any
// CMake target, so the real tree (and the real compile database) stays
// clean.
//
// ci_check.sh points imk_lint at a synthetic compile database listing this
// file and asserts the lint exits NONZERO: the fault-point check must flag
// pool fault-point names the injector never registered (arming one is a
// silent no-op — the drill would pass without drilling anything), both when
// armed through the IMK_FAULT_* macros and when spelled inside a
// FaultPlan::Parse spec. If imk_lint ever comes back clean over this file,
// the fault-point check has rotted.
#include "src/base/fault_injection.h"

namespace imk {

Status BogusPoolRefill() {
  IMK_FAULT_POINT("pool.bogus_refill");  // unregistered: the lint must flag this
  return OkStatus();
}

void ArmBogusPoolPlan() {
  (void)FaultPlan::Parse("pool.bogus_render:corrupt:p=0.5", 1);  // unregistered too
}

Status BogusMemPressure() {
  // An unregistered governor fault point: the real ones are
  // mem.pressure_soft / mem.pressure_hard / mem.reclaim.
  IMK_FAULT_POINT("mem.bogus_pressure");
  return OkStatus();
}

Status BogusTraceOverflow() {
  // An unregistered tracer fault point: the real one is trace.buffer_full.
  IMK_FAULT_POINT("trace.bogus_overflow");
  return OkStatus();
}

}  // namespace imk
