// Parameterized property sweep over kernel-builder scales and profiles:
// structural invariants must hold at every size, not just the test default.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/base/align.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

struct SweepCase {
  KernelProfile profile;
  double scale;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s_scale_%04d", KernelProfileName(info.param.profile),
                static_cast<int>(info.param.scale * 1000));
  return buf;
}

class KernelSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweepTest, StructuralInvariants) {
  const SweepCase& param = GetParam();
  KernelConfig config = KernelConfig::Make(param.profile, RandoMode::kFgKaslr, param.scale);
  auto built = BuildKernel(config);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const KernelBuildInfo& info = *built;

  // The ELF must parse and expose the expected structure.
  auto elf = ElfReader::Parse(ByteSpan(info.vmlinux));
  ASSERT_TRUE(elf.ok());
  EXPECT_EQ(elf->entry(), info.entry_vaddr);

  // The memsz span from the program headers must match ImageMemSize.
  uint64_t lo = UINT64_MAX;
  uint64_t hi = 0;
  for (const auto& phdr : elf->program_headers()) {
    if (phdr.p_type == kPtLoad) {
      lo = std::min(lo, phdr.p_vaddr);
      hi = std::max(hi, phdr.p_vaddr + phdr.p_memsz);
    }
  }
  EXPECT_EQ(lo, info.text_vaddr);
  EXPECT_LE(hi, info.image_end_vaddr);

  // Generated functions fill most of the text budget (the remainder is the
  // .text.rest pad section), and the .rodata section starts at or past the
  // full budget.
  const uint64_t text_span = info.functions.back().vaddr + info.functions.back().size -
                             info.text_vaddr;
  EXPECT_GE(text_span + 4096, config.text_bytes * 7 / 10);
  auto rodata = elf->FindSection(".rodata");
  ASSERT_TRUE(rodata.ok());
  EXPECT_GE((*rodata)->header.sh_addr - info.text_vaddr, config.text_bytes);

  // All functions are inside the text segment and 16-aligned.
  for (const auto& fn : info.functions) {
    EXPECT_TRUE(IsAligned(fn.vaddr, 16));
    EXPECT_GE(fn.vaddr, info.text_vaddr);
    EXPECT_LT(fn.vaddr + fn.size, info.image_end_vaddr);
  }

  // Relocation fields live in loadable memory and are unique per class.
  for (const auto* list : {&info.relocs.abs64, &info.relocs.abs32, &info.relocs.inverse32}) {
    EXPECT_TRUE(std::is_sorted(list->begin(), list->end()));
    EXPECT_EQ(std::adjacent_find(list->begin(), list->end()), list->end())
        << "duplicate relocation entry";
  }

  // The image fits its advertised randomization window.
  EXPECT_LE(kPhysicalStart + info.ImageMemSize(), kKernelImageSize);
}

TEST_P(KernelSweepTest, SizesScaleMonotonically) {
  const SweepCase& param = GetParam();
  auto small = BuildKernel(KernelConfig::Make(param.profile, RandoMode::kKaslr, param.scale));
  auto bigger =
      BuildKernel(KernelConfig::Make(param.profile, RandoMode::kKaslr, param.scale * 2));
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(bigger.ok());
  EXPECT_GT(bigger->vmlinux.size(), small->vmlinux.size());
  EXPECT_GT(bigger->relocs.total(), small->relocs.total());
  EXPECT_GT(bigger->functions.size(), small->functions.size());
}

INSTANTIATE_TEST_SUITE_P(Scales, KernelSweepTest,
                         ::testing::Values(SweepCase{KernelProfile::kLupine, 0.004},
                                           SweepCase{KernelProfile::kLupine, 0.02},
                                           SweepCase{KernelProfile::kAws, 0.004},
                                           SweepCase{KernelProfile::kAws, 0.02},
                                           SweepCase{KernelProfile::kUbuntu, 0.004},
                                           SweepCase{KernelProfile::kUbuntu, 0.02}),
                         SweepName);

}  // namespace
}  // namespace imk
