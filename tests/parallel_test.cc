// PR 2 test battery: the parallel, amortized randomization pipeline.
//
// Three invariants under test:
//   1. ThreadPool's static partitioning is exact (full coverage, no overlap)
//      and errors propagate deterministically.
//   2. The batch translation machinery (ShuffleMap::BatchDeltas and
//      ShuffleDeltaIndex) answers exactly like per-entry binary search.
//   3. The loader produces byte-identical guest memory for the same
//      (image, seed) regardless of worker count and template-cache state —
//      the determinism contract of DirectLoadFromTemplate.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "src/base/threadpool.h"
#include "src/elf/elf_types.h"
#include "src/elf/elf_writer.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/relocator.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/image_template.h"
#include "src/vmm/loader.h"

namespace imk {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ChunkRangePartitionsExactly) {
  for (uint64_t n : {0ull, 1ull, 7ull, 64ull, 1000003ull}) {
    for (uint32_t chunks : {1u, 2u, 3u, 7u, 16u}) {
      uint64_t expected_begin = 0;
      for (uint32_t i = 0; i < chunks; ++i) {
        auto [begin, end] = ThreadPool::ChunkRange(n, chunks, i);
        EXPECT_EQ(begin, expected_begin);
        EXPECT_LE(begin, end);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, n);
    }
  }
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<uint32_t> calls{0};
  pool.ParallelFor(0, [&](uint64_t, uint64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (uint64_t n : {1ull, 3ull, 5ull, 64ull, 1000ull}) {
    // n < workers exercises the chunk clamp; larger n the general path.
    std::vector<std::atomic<uint32_t>> hits(n);
    pool.ParallelFor(n, [&](uint64_t begin, uint64_t end) {
      for (uint64_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1u) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  uint64_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(100, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      sum += i;
    }
  });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelForChunked(100, 4,
                              [&](uint32_t chunk, uint64_t, uint64_t) {
                                if (chunk == 2) {
                                  throw std::runtime_error("chunk 2 failed");
                                }
                              }),
      std::runtime_error);
  // The pool survives a throwing job and keeps working.
  std::atomic<uint32_t> calls{0};
  pool.ParallelFor(8, [&](uint64_t begin, uint64_t end) {
    calls.fetch_add(static_cast<uint32_t>(end - begin));
  });
  EXPECT_EQ(calls.load(), 8u);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 10; ++rep) {
    try {
      pool.ParallelForChunked(16, 4, [&](uint32_t chunk, uint64_t, uint64_t) {
        throw std::runtime_error("chunk " + std::to_string(chunk));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 0");
    }
  }
}

// ---------------------------------------------- BatchDeltas / ShuffleDeltaIndex

ShuffleMap MakeMapWithGapsAndZeroSize() {
  // Deliberately awkward: gaps between ranges, a zero-size range, unaligned
  // starts/sizes, and ranges smaller than one 16-byte granule.
  std::vector<ShuffledRange> ranges;
  ranges.push_back({0x1000, 0x2000, 0x100});
  ranges.push_back({0x1105, 0x3000, 0x3b});   // unaligned start+size, gap before
  ranges.push_back({0x1200, 0x1200, 0});      // zero-size
  ranges.push_back({0x1210, 0x4000, 0x8});    // sub-granule
  ranges.push_back({0x1400, 0x1500, 0x400});  // overlaps granule boundaries
  return ShuffleMap(std::move(ranges));
}

TEST(BatchDeltasTest, MatchesPerEntryDeltaFor) {
  const ShuffleMap map = MakeMapWithGapsAndZeroSize();
  std::vector<uint64_t> addrs;
  for (uint64_t a = 0xf80; a < 0x1900; ++a) {  // dense sweep incl. both flanks
    addrs.push_back(a);
  }
  std::vector<int64_t> batch(addrs.size());
  map.BatchDeltas(addrs.data(), addrs.size(), batch.data());
  for (size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(batch[i], map.DeltaFor(addrs[i])) << "addr " << addrs[i];
  }
}

TEST(BatchDeltasTest, EmptyInputsAndEmptyMap) {
  const ShuffleMap empty_map;
  std::vector<uint64_t> addrs = {1, 2, 0x1000};
  std::vector<int64_t> out(addrs.size(), -1);
  empty_map.BatchDeltas(addrs.data(), addrs.size(), out.data());
  for (int64_t delta : out) {
    EXPECT_EQ(delta, 0);
  }
  const ShuffleMap map = MakeMapWithGapsAndZeroSize();
  map.BatchDeltas(nullptr, 0, nullptr);  // must tolerate count == 0
}

TEST(ShuffleDeltaIndexTest, MatchesPerEntryDeltaFor) {
  const ShuffleMap map = MakeMapWithGapsAndZeroSize();
  ShuffleDeltaIndex index;
  index.Rebuild(map);
  for (uint64_t a = 0xf80; a < 0x1900; ++a) {
    EXPECT_EQ(index.DeltaFor(a), map.DeltaFor(a)) << "addr " << a;
    EXPECT_EQ(index.Translate(a), map.Translate(a)) << "addr " << a;
  }
  // Far outside the span.
  EXPECT_EQ(index.DeltaFor(0), 0);
  EXPECT_EQ(index.DeltaFor(UINT64_MAX), 0);
}

TEST(ShuffleDeltaIndexTest, RebuildReusesAcrossMaps) {
  ShuffleDeltaIndex index;
  index.Rebuild(MakeMapWithGapsAndZeroSize());
  const ShuffleMap second(std::vector<ShuffledRange>{{0x9000, 0xa000, 0x40}});
  index.Rebuild(second);
  for (uint64_t a = 0x8fe0; a < 0x9060; ++a) {
    EXPECT_EQ(index.DeltaFor(a), second.DeltaFor(a)) << "addr " << a;
  }
}

TEST(ShuffleDeltaIndexTest, MatchesOnRealShuffle) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, 0.05));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  auto tmpl = BuildImageTemplate(ByteSpan(built->vmlinux), TemplateOptions{});
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  ASSERT_TRUE((*tmpl)->fg.has_value());

  Bytes image = (*tmpl)->pristine;
  LoadedImageView view(MutableByteSpan(image), (*tmpl)->link_base);
  Rng rng(1234);
  auto fg = ShuffleFunctionsPreparsed(*(*tmpl)->fg, view, FgKaslrParams{}, rng);
  ASSERT_TRUE(fg.ok()) << fg.status().ToString();

  ShuffleDeltaIndex index;
  index.Rebuild(fg->map);
  const auto& ranges = fg->map.ranges();
  ASSERT_FALSE(ranges.empty());
  for (const ShuffledRange& range : ranges) {
    for (uint64_t probe : {range.old_vaddr, range.old_vaddr + range.size / 2,
                           range.old_vaddr + range.size - 1, range.old_vaddr + range.size}) {
      EXPECT_EQ(index.DeltaFor(probe), fg->map.DeltaFor(probe)) << "addr " << probe;
    }
  }
}

// ------------------------------------------------------------- equivalence

class PipelineEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kFgKaslr, 0.05));
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    info_ = std::move(*built);
  }

  Result<LoadedKernel> Load(GuestMemory& memory, uint64_t seed,
                            const DirectLoadResources& resources) {
    DirectBootParams params;
    params.requested = RandoMode::kFgKaslr;
    Rng rng(seed);
    return DirectLoadKernel(memory, ByteSpan(info_.vmlinux), &info_.relocs, params, rng,
                            resources);
  }

  KernelBuildInfo info_;
};

TEST_F(PipelineEquivalenceTest, PerEntryVsBatchBitIdentical) {
  auto tmpl = BuildImageTemplate(ByteSpan(info_.vmlinux), TemplateOptions{});
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->fg.has_value());

  Bytes image_a = (*tmpl)->pristine;
  Bytes image_b = (*tmpl)->pristine;
  LoadedImageView view_a(MutableByteSpan(image_a), (*tmpl)->link_base);
  LoadedImageView view_b(MutableByteSpan(image_b), (*tmpl)->link_base);

  // Same seed => same shuffle on both copies.
  Rng rng_a(42), rng_b(42);
  auto fg_a = ShuffleFunctionsPreparsed(*(*tmpl)->fg, view_a, FgKaslrParams{}, rng_a);
  auto fg_b = ShuffleFunctionsPreparsed(*(*tmpl)->fg, view_b, FgKaslrParams{}, rng_b);
  ASSERT_TRUE(fg_a.ok());
  ASSERT_TRUE(fg_b.ok());
  ASSERT_TRUE(image_a == image_b);

  const uint64_t slide = 0x1234000;
  auto batch = ApplyRelocationsShuffled(view_a, info_.relocs, slide, fg_a->map);
  auto reference = ApplyRelocationsShuffledPerEntry(view_b, info_.relocs, slide, fg_b->map);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_TRUE(*batch == *reference);
  EXPECT_GT(batch->total(), 0u);
  EXPECT_TRUE(image_a == image_b) << "batch and per-entry relocation diverged";
}

TEST_F(PipelineEquivalenceTest, WorkerCountInvariance) {
  constexpr uint64_t kSeed = 7;
  GuestMemory baseline_mem(64ull << 20);
  auto baseline = Load(baseline_mem, kSeed, DirectLoadResources{});
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_TRUE(baseline->fg.has_value());

  for (uint32_t workers : {1u, 2u, 4u}) {
    ThreadPool pool(workers);
    RelocScratch scratch;
    Bytes move_scratch;
    DirectLoadResources resources;
    resources.pool = &pool;
    resources.reloc_scratch = &scratch;
    resources.move_scratch = &move_scratch;

    GuestMemory memory(64ull << 20);
    auto loaded = Load(memory, kSeed, resources);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    EXPECT_EQ(loaded->entry_vaddr, baseline->entry_vaddr);
    EXPECT_EQ(loaded->choice.virt_slide, baseline->choice.virt_slide);
    EXPECT_EQ(loaded->choice.phys_load_addr, baseline->choice.phys_load_addr);
    EXPECT_TRUE(loaded->reloc_stats == baseline->reloc_stats);

    ASSERT_TRUE(loaded->fg.has_value());
    const auto& ranges = loaded->fg->map.ranges();
    const auto& baseline_ranges = baseline->fg->map.ranges();
    ASSERT_EQ(ranges.size(), baseline_ranges.size());
    for (size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_EQ(ranges[i].old_vaddr, baseline_ranges[i].old_vaddr);
      EXPECT_EQ(ranges[i].new_vaddr, baseline_ranges[i].new_vaddr);
      EXPECT_EQ(ranges[i].size, baseline_ranges[i].size);
    }

    ByteSpan got = memory.all();
    ByteSpan want = baseline_mem.all();
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
        << "guest memory diverged with " << workers << " workers";
  }
}

TEST_F(PipelineEquivalenceTest, CacheHitMissInvariance) {
  constexpr uint64_t kSeed = 11;
  GuestMemory cold_mem(64ull << 20);
  auto cold = Load(cold_mem, kSeed, DirectLoadResources{});  // no cache at all
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->template_cache_hit);

  ImageTemplateCache cache(2);
  DirectLoadResources resources;
  resources.cache = &cache;

  GuestMemory miss_mem(64ull << 20);
  auto miss = Load(miss_mem, kSeed, resources);
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->template_cache_hit);
  EXPECT_EQ(cache.misses(), 1u);

  GuestMemory hit_mem(64ull << 20);
  auto hit = Load(hit_mem, kSeed, resources);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->template_cache_hit);
  EXPECT_EQ(cache.hits(), 1u);

  ByteSpan a = cold_mem.all();
  ByteSpan b = miss_mem.all();
  ByteSpan c = hit_mem.all();
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << "cache-miss boot diverged";
  EXPECT_EQ(std::memcmp(a.data(), c.data(), a.size()), 0) << "cache-hit boot diverged";
  EXPECT_TRUE(cold->reloc_stats == hit->reloc_stats);
}

TEST_F(PipelineEquivalenceTest, ReferenceModeBitIdentical) {
  // The pre-batch reference pipeline (defensive copy, old-order placement,
  // per-entry fixups + full sort) and the fast pipeline (pristine-sourced
  // placement, placement-order fixup merge, pooled loops) must agree byte
  // for byte — FgExecContext::reference is the oracle the bench's serial
  // baseline runs, so it has to be a true behavioural twin.
  auto tmpl = BuildImageTemplate(ByteSpan(info_.vmlinux), TemplateOptions{});
  ASSERT_TRUE(tmpl.ok());
  ASSERT_TRUE((*tmpl)->fg.has_value());

  Bytes image_ref = (*tmpl)->pristine;
  Bytes image_fast = (*tmpl)->pristine;
  LoadedImageView view_ref(MutableByteSpan(image_ref), (*tmpl)->link_base);
  LoadedImageView view_fast(MutableByteSpan(image_fast), (*tmpl)->link_base);

  FgExecContext reference_context;
  reference_context.reference = true;
  ThreadPool pool(4);
  RelocScratch scratch;
  Bytes move_scratch;
  FgExecContext fast_context;
  fast_context.pool = &pool;
  fast_context.scratch = &scratch;
  fast_context.move_scratch = &move_scratch;
  fast_context.pristine = ByteSpan((*tmpl)->pristine);

  Rng rng_ref(13), rng_fast(13);
  auto fg_ref =
      ShuffleFunctionsPreparsed(*(*tmpl)->fg, view_ref, FgKaslrParams{}, rng_ref,
                                reference_context);
  auto fg_fast =
      ShuffleFunctionsPreparsed(*(*tmpl)->fg, view_fast, FgKaslrParams{}, rng_fast, fast_context);
  ASSERT_TRUE(fg_ref.ok()) << fg_ref.status().ToString();
  ASSERT_TRUE(fg_fast.ok()) << fg_fast.status().ToString();
  EXPECT_EQ(fg_ref->sections_shuffled, fg_fast->sections_shuffled);
  EXPECT_TRUE(image_ref == image_fast) << "reference and fast shuffle diverged";

  const uint64_t slide = 0x2000000;
  auto stats_ref = ApplyRelocationsShuffledPerEntry(view_ref, info_.relocs, slide, fg_ref->map);
  RelocApplyOptions options;
  options.pool = &pool;
  options.scratch = &scratch;
  auto stats_fast =
      ApplyRelocationsShuffled(view_fast, info_.relocs, slide, fg_fast->map, options);
  ASSERT_TRUE(stats_ref.ok());
  ASSERT_TRUE(stats_fast.ok());
  EXPECT_TRUE(*stats_ref == *stats_fast);
  EXPECT_TRUE(image_ref == image_fast) << "reference and fast relocation diverged";
}

TEST_F(PipelineEquivalenceTest, ScratchReuseAcrossSeeds) {
  // One RelocScratch carried across boots with different seeds: the second
  // and third boots hit the boot-invariant classification caches (same image
  // geometry, fresh permutation + slide) and must still match a boot that
  // classified from scratch.
  ThreadPool pool(2);
  RelocScratch shared_scratch;
  Bytes move_scratch;
  ImageTemplateCache cache(2);
  DirectLoadResources reused;
  reused.pool = &pool;
  reused.cache = &cache;
  reused.reloc_scratch = &shared_scratch;
  reused.move_scratch = &move_scratch;

  for (uint64_t seed : {3ull, 17ull, 99ull}) {
    GuestMemory reused_mem(64ull << 20);
    auto with_reuse = Load(reused_mem, seed, reused);
    ASSERT_TRUE(with_reuse.ok()) << with_reuse.status().ToString();

    GuestMemory fresh_mem(64ull << 20);
    auto fresh = Load(fresh_mem, seed, DirectLoadResources{});
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();

    EXPECT_EQ(with_reuse->choice.virt_slide, fresh->choice.virt_slide);
    EXPECT_TRUE(with_reuse->reloc_stats == fresh->reloc_stats);
    ByteSpan got = reused_mem.all();
    ByteSpan want = fresh_mem.all();
    ASSERT_EQ(got.size(), want.size());
    EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
        << "scratch reuse diverged at seed " << seed;
  }
}

// ------------------------------------------------------------ template cache

TEST(ImageTemplateCacheTest, LruEvictionAndCounters) {
  auto a = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01));
  auto b = BuildKernel(KernelConfig::Make(KernelProfile::kAws, RandoMode::kKaslr, 0.01));
  auto c = BuildKernel(KernelConfig::Make(KernelProfile::kUbuntu, RandoMode::kKaslr, 0.01));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  ImageTemplateCache cache(2);
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(a->vmlinux), TemplateOptions{}).ok());
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(b->vmlinux), TemplateOptions{}).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 2u);

  // Hit A (making B least-recent), insert C => B evicted.
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(a->vmlinux), TemplateOptions{}).ok());
  EXPECT_EQ(cache.hits(), 1u);
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(c->vmlinux), TemplateOptions{}).ok());
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(a->vmlinux), TemplateOptions{}).ok());
  EXPECT_EQ(cache.hits(), 2u);
  ASSERT_TRUE(cache.GetOrBuild(ByteSpan(b->vmlinux), TemplateOptions{}).ok());
  EXPECT_EQ(cache.misses(), 4u);  // B was evicted and rebuilt

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(ImageTemplateCacheTest, RelocsExtractionUpgrades) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01));
  ASSERT_TRUE(built.ok());

  ImageTemplateCache cache(2);
  TemplateOptions plain;
  TemplateOptions with_relocs;
  with_relocs.extract_relocs = true;

  auto first = cache.GetOrBuild(ByteSpan(built->vmlinux), plain);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE((*first)->relocs_extracted);

  // Asking for relocs afterwards must rebuild (upgrade), not serve stale.
  auto upgraded = cache.GetOrBuild(ByteSpan(built->vmlinux), with_relocs);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_TRUE((*upgraded)->relocs_extracted);
  EXPECT_FALSE((*upgraded)->elf_relocs.empty());
  EXPECT_EQ(cache.misses(), 2u);

  // And the upgraded entry satisfies both option sets from now on.
  auto again_plain = cache.GetOrBuild(ByteSpan(built->vmlinux), plain);
  auto again_relocs = cache.GetOrBuild(ByteSpan(built->vmlinux), with_relocs);
  ASSERT_TRUE(again_plain.ok() && again_relocs.ok());
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(again_plain->get(), again_relocs->get());
}

// --------------------------------------------------- ImageSpan regression

TEST(ImageSpanRegressionTest, NoLoadableSegmentsIsCleanParseError) {
  // An ELF with sections but zero PT_LOAD headers. The old span computation
  // seeded lo=UINT64_MAX/hi=0 and reported hi-lo == 1 (unsigned wrap), so
  // the "no loadable segments" guard never fired and the loader continued
  // with a garbage link base.
  ElfWriter writer(kEmVk64, kEtExec);
  SectionSpec text;
  text.name = ".text";
  text.flags = kShfAlloc | kShfExecinstr;
  text.addr = 0x401000;
  text.data = Bytes(64, 0x90);
  writer.AddSection(std::move(text));
  auto image = writer.Finish();
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  auto tmpl = BuildImageTemplate(ByteSpan(*image), TemplateOptions{});
  ASSERT_FALSE(tmpl.ok());
  EXPECT_EQ(tmpl.status().code(), ErrorCode::kParseError);
  EXPECT_NE(tmpl.status().message().find("no loadable segments"), std::string::npos);

  GuestMemory memory(16ull << 20);
  DirectBootParams params;
  Rng rng(1);
  auto loaded = DirectLoadKernel(memory, ByteSpan(*image), nullptr, params, rng);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kParseError);
}

}  // namespace
}  // namespace imk
