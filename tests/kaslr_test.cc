// Unit tests for the KASLR core: offset picking, relocation engine, shuffle
// map, FGKASLR engine invariants, and entropy analysis.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/base/align.h"
#include "src/elf/elf_reader.h"
#include "src/kaslr/entropy.h"
#include "src/kaslr/fgkaslr.h"
#include "src/kaslr/random_offset.h"
#include "src/kaslr/relocator.h"
#include "src/kaslr/shuffle_map.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

OffsetConstraints MakeConstraints(uint64_t image_size = 8ull << 20,
                                  uint64_t guest_mem = 256ull << 20) {
  OffsetConstraints constraints;
  constraints.image_mem_size = image_size;
  constraints.guest_mem_size = guest_mem;
  constraints.reserved_tail = 1 << 20;
  constraints.constants = DefaultKernelConstants();
  return constraints;
}

TEST(RandomOffsetTest, ChoicesAlignedAndInRange) {
  OffsetConstraints constraints = MakeConstraints();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    auto choice = ChooseRandomOffsets(constraints, rng);
    ASSERT_TRUE(choice.ok());
    EXPECT_TRUE(IsAligned(choice->virt_slide, kPhysicalAlign));
    EXPECT_TRUE(IsAligned(choice->phys_load_addr, kPhysicalAlign));
    EXPECT_GE(choice->phys_load_addr, kPhysicalStart);
    // Virtual placement: within [16M, 1G) window.
    EXPECT_LE(kPhysicalStart + choice->virt_slide + constraints.image_mem_size,
              kKernelImageSize);
    // Physical placement: image + tail fit in RAM.
    EXPECT_LE(choice->phys_load_addr + constraints.image_mem_size + constraints.reserved_tail,
              constraints.guest_mem_size);
  }
}

TEST(RandomOffsetTest, SlotCountMatchesWindow) {
  OffsetConstraints constraints = MakeConstraints(/*image_size=*/8ull << 20);
  auto slots = VirtualSlots(constraints);
  ASSERT_TRUE(slots.ok());
  // (1G - 16M - 8M) / 2M + 1 = 501
  EXPECT_EQ(*slots, (kKernelImageSize - kPhysicalStart - (8ull << 20)) / kPhysicalAlign + 1);
}

TEST(RandomOffsetTest, OversizedImageRejected) {
  OffsetConstraints constraints = MakeConstraints(/*image_size=*/2ull << 30);
  Rng rng(1);
  EXPECT_FALSE(ChooseRandomOffsets(constraints, rng).ok());
}

TEST(RandomOffsetTest, TinyGuestMemoryRejected) {
  OffsetConstraints constraints = MakeConstraints(8ull << 20, /*guest_mem=*/16ull << 20);
  Rng rng(1);
  EXPECT_FALSE(ChooseRandomOffsets(constraints, rng).ok());
}

TEST(RandomOffsetTest, EntropyMatchesLinuxWindow) {
  // The paper (§4.3): offsets span 16MB..1GB with 2MB alignment — ~9 bits of
  // entropy for a small kernel, identical to Linux.
  OffsetConstraints constraints = MakeConstraints(8ull << 20);
  auto bits = VirtualEntropyBits(constraints);
  ASSERT_TRUE(bits.ok());
  EXPECT_GT(*bits, 8.9);
  EXPECT_LT(*bits, 9.1);
}

TEST(EntropyTest, SamplerCoversSlotsUniformly) {
  OffsetConstraints constraints = MakeConstraints();
  auto report = MeasureOffsetEntropy(constraints, 20000, 7, 16);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->distinct_slides, report->possible_slots / 2);
  // Chi-squared for 16 buckets: df=15; > 45 would be wildly non-uniform.
  EXPECT_LT(report->chi_squared, 45.0);
  EXPECT_EQ(report->min_slide, 0.0);
}

TEST(EntropyTest, ShuffleEntropyGrows) {
  EXPECT_NEAR(ShuffleEntropyBits(2), 1.0, 1e-9);
  EXPECT_GT(ShuffleEntropyBits(1000), 8000);  // log2(1000!) ~ 8529
  EXPECT_LT(ShuffleEntropyBits(1000), 9000);
}

TEST(ShuffleMapTest, TranslateAndDelta) {
  std::vector<ShuffledRange> ranges = {
      {0x1000, 0x3000, 0x100},
      {0x2000, 0x1000, 0x200},
      {0x3000, 0x2000, 0x80},
  };
  ShuffleMap map(ranges);
  EXPECT_EQ(map.DeltaFor(0x1000), 0x2000);
  EXPECT_EQ(map.DeltaFor(0x10ff), 0x2000);
  EXPECT_EQ(map.DeltaFor(0x1100), 0);  // past range end
  EXPECT_EQ(map.Translate(0x2080), 0x1080u);
  EXPECT_EQ(map.Translate(0x3040), 0x2040u);
  EXPECT_EQ(map.DeltaFor(0x500), 0);   // below all ranges
  EXPECT_EQ(map.DeltaFor(0x9000), 0);  // above all ranges
}

TEST(RelocatorTest, AppliesAllThreeClasses) {
  // A tiny fake image: abs64 at 0x00, abs32 at 0x10, inverse32 at 0x20.
  Bytes buffer(0x40, 0);
  const uint64_t base = kLinkTextVaddr;
  StoreLe64(buffer.data() + 0x00, base + 0x123);
  StoreLe32(buffer.data() + 0x10, static_cast<uint32_t>(base + 0x456));
  StoreLe32(buffer.data() + 0x20, static_cast<uint32_t>(0x1000 - (base + 0x789)));

  LoadedImageView view(MutableByteSpan(buffer), base);
  RelocInfo relocs;
  relocs.abs64 = {base + 0x00};
  relocs.abs32 = {base + 0x10};
  relocs.inverse32 = {base + 0x20};

  const uint64_t delta = 0x600000;
  auto stats = ApplyRelocations(view, relocs, delta);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->total(), 3u);
  EXPECT_EQ(LoadLe64(buffer.data() + 0x00), base + 0x123 + delta);
  EXPECT_EQ(LoadLe32(buffer.data() + 0x10), static_cast<uint32_t>(base + 0x456 + delta));
  EXPECT_EQ(LoadLe32(buffer.data() + 0x20),
            static_cast<uint32_t>(0x1000 - (base + 0x789) - delta));
}

TEST(RelocatorTest, FieldOutsideImageFails) {
  Bytes buffer(0x40, 0);
  LoadedImageView view(MutableByteSpan(buffer), kLinkTextVaddr);
  RelocInfo relocs;
  relocs.abs64 = {kLinkTextVaddr + 0x100};  // outside 0x40-byte image
  EXPECT_FALSE(ApplyRelocations(view, relocs, 0x200000).ok());
}

TEST(RelocatorTest, ShuffledVariantAdjustsMovedTargets) {
  // Value at 0x00 points into a section that moved +0x1000; field at 0x30
  // itself lives in a section that moved +0x8.
  Bytes buffer(0x2000, 0);
  const uint64_t base = kLinkTextVaddr;
  StoreLe64(buffer.data() + 0x00, base + 0x500);   // target moves
  StoreLe64(buffer.data() + 0x38, base + 0x1800);  // field moved 0x30 -> 0x38; target static

  ShuffleMap map({{base + 0x500, base + 0x1500, 0x100},   // target section
                  {base + 0x20, base + 0x28, 0x20}});     // field section
  LoadedImageView view(MutableByteSpan(buffer), base);
  RelocInfo relocs;
  relocs.abs64 = {base + 0x00, base + 0x30};
  const uint64_t delta = 0x400000;
  auto stats = ApplyRelocationsShuffled(view, relocs, delta, map);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->section_adjusted, 1u);
  EXPECT_EQ(LoadLe64(buffer.data() + 0x00), base + 0x1500 + delta);
  EXPECT_EQ(LoadLe64(buffer.data() + 0x38), base + 0x1800 + delta);
}

// ---- FGKASLR engine invariants over a real kernel image ----

struct ShuffledKernel {
  KernelBuildInfo info;
  Bytes loaded;  // segments placed at link addresses
  FgKaslrResult result;

  static ShuffledKernel Make(uint64_t seed, KallsymsFixup kallsyms = KallsymsFixup::kEager) {
    ShuffledKernel sk;
    auto built =
        BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kFgKaslr, 0.01));
    EXPECT_TRUE(built.ok());
    sk.info = std::move(*built);

    auto elf = ElfReader::Parse(ByteSpan(sk.info.vmlinux));
    EXPECT_TRUE(elf.ok());
    sk.loaded.assign(sk.info.ImageMemSize(), 0);
    for (const auto& phdr : elf->program_headers()) {
      if (phdr.p_type != 1) {
        continue;
      }
      auto data = elf->SegmentData(phdr);
      EXPECT_TRUE(data.ok());
      std::copy(data->begin(), data->end(),
                sk.loaded.begin() + (phdr.p_vaddr - sk.info.text_vaddr));
    }
    LoadedImageView view(MutableByteSpan(sk.loaded), sk.info.text_vaddr);
    FgKaslrParams params;
    params.kallsyms = kallsyms;
    Rng rng(seed);
    auto result = ShuffleFunctions(*elf, view, params, rng);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    sk.result = std::move(*result);
    return sk;
  }
};

TEST(FgKaslrTest, ShuffleIsAPermutationPreservingBytes) {
  ShuffledKernel sk = ShuffledKernel::Make(5);
  ASSERT_EQ(sk.result.sections_shuffled, sk.info.functions.size());

  // Every function's bytes must appear intact at its new address.
  // Rebuild the original bytes from the ELF.
  auto elf = ElfReader::Parse(ByteSpan(sk.info.vmlinux));
  ASSERT_TRUE(elf.ok());
  std::set<uint64_t> new_starts;
  for (const auto& fn : sk.info.functions) {
    const int64_t delta = sk.result.map.DeltaFor(fn.vaddr);
    const uint64_t new_vaddr = fn.vaddr + static_cast<uint64_t>(delta);
    EXPECT_TRUE(new_starts.insert(new_vaddr).second) << "overlapping sections";
    auto section = elf->FindSection(".text." + fn.name);
    ASSERT_TRUE(section.ok());
    auto original = elf->SectionData(**section);
    ASSERT_TRUE(original.ok());
    ByteSpan moved(sk.loaded.data() + (new_vaddr - sk.info.text_vaddr), original->size());
    EXPECT_TRUE(std::equal(original->begin(), original->end(), moved.begin()))
        << fn.name << " bytes corrupted";
  }
}

TEST(FgKaslrTest, ShuffleActuallyMovesMostFunctions) {
  ShuffledKernel sk = ShuffledKernel::Make(5);
  size_t moved = 0;
  for (const auto& fn : sk.info.functions) {
    if (sk.result.map.DeltaFor(fn.vaddr) != 0) {
      ++moved;
    }
  }
  EXPECT_GT(moved, sk.info.functions.size() * 9 / 10);
}

TEST(FgKaslrTest, DifferentSeedsGiveDifferentPermutations) {
  ShuffledKernel a = ShuffledKernel::Make(5);
  ShuffledKernel b = ShuffledKernel::Make(6);
  size_t differing = 0;
  for (const auto& fn : a.info.functions) {
    if (a.result.map.DeltaFor(fn.vaddr) != b.result.map.DeltaFor(fn.vaddr)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, a.info.functions.size() / 2);
}

TEST(FgKaslrTest, KallsymsStaysSortedAndConsistent) {
  ShuffledKernel sk = ShuffledKernel::Make(7);
  // Locate the kallsyms table through the ELF symbol.
  auto elf = ElfReader::Parse(ByteSpan(sk.info.vmlinux));
  auto symbols = elf->ReadSymbols();
  ASSERT_TRUE(symbols.ok());
  uint64_t table_vaddr = 0;
  uint64_t table_size = 0;
  for (const auto& symbol : *symbols) {
    if (symbol.name == "__kallsyms") {
      table_vaddr = symbol.value;
      table_size = symbol.size;
    }
  }
  ASSERT_NE(table_vaddr, 0u);
  const uint8_t* table = sk.loaded.data() + (table_vaddr - sk.info.text_vaddr);
  uint64_t prev = 0;
  std::set<uint64_t> offsets;
  for (uint64_t i = 0; i < table_size / 16; ++i) {
    const uint64_t offset = LoadLe64(table + i * 16);
    EXPECT_GE(offset, prev) << "kallsyms not sorted after fixup";
    prev = offset;
    offsets.insert(offset);
  }
  // Every (moved) function start must appear in the fixed-up table.
  for (const auto& fn : sk.info.functions) {
    const uint64_t new_offset =
        fn.vaddr + static_cast<uint64_t>(sk.result.map.DeltaFor(fn.vaddr)) - sk.info.text_vaddr;
    EXPECT_TRUE(offsets.count(new_offset)) << fn.name;
  }
}

TEST(FgKaslrTest, LazyModeLeavesKallsymsPending) {
  ShuffledKernel sk = ShuffledKernel::Make(8, KallsymsFixup::kLazy);
  EXPECT_TRUE(sk.result.kallsyms_pending);
  EXPECT_GT(sk.result.kallsyms_count, 0u);
  // Deferred fixup must produce a sorted table too.
  LoadedImageView view(MutableByteSpan(sk.loaded), sk.info.text_vaddr);
  ASSERT_TRUE(FixupKallsymsTable(view, sk.result.kallsyms_vaddr, sk.result.kallsyms_count,
                                 sk.result.map)
                  .ok());
}

TEST(FgKaslrTest, NonFgKernelIsRejected) {
  auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, RandoMode::kKaslr, 0.01));
  ASSERT_TRUE(built.ok());
  auto elf = ElfReader::Parse(ByteSpan(built->vmlinux));
  ASSERT_TRUE(elf.ok());
  Bytes loaded(built->ImageMemSize(), 0);
  LoadedImageView view(MutableByteSpan(loaded), built->text_vaddr);
  FgKaslrParams params;
  Rng rng(1);
  auto result = ShuffleFunctions(*elf, view, params, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace imk
