// Unit tests for the content-based page-sharing analyzer, plus the kernel-
// level sharing properties behind the paper's §6 memory-density discussion.
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/kaslr/page_sharing.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

TEST(PageSharingTest, IdenticalRegionsFullyShare) {
  Bytes a(16 * 4096);
  Rng rng(1);
  for (auto& b : a) {
    b = static_cast<uint8_t>(rng.Next());
  }
  const PageSharingReport report = ComparePages(ByteSpan(a), ByteSpan(a));
  EXPECT_EQ(report.pages_a, 16u);
  EXPECT_EQ(report.pages_b, 16u);
  EXPECT_EQ(report.sharable_pages, 16u);
  EXPECT_EQ(report.zero_pages_b, 0u);
  EXPECT_DOUBLE_EQ(report.SharableFraction(), 1.0);
}

TEST(PageSharingTest, DisjointRegionsShareNothing) {
  Bytes a(8 * 4096);
  Bytes b(8 * 4096);
  Rng rng(2);
  for (auto& byte : a) {
    byte = static_cast<uint8_t>(rng.Next() | 1);
  }
  for (auto& byte : b) {
    byte = static_cast<uint8_t>(rng.Next() | 1);
  }
  const PageSharingReport report = ComparePages(ByteSpan(a), ByteSpan(b));
  EXPECT_EQ(report.sharable_pages, 0u);
}

TEST(PageSharingTest, ZeroPagesCountedSeparately) {
  Bytes a(4 * 4096, 0);
  Bytes b(4 * 4096, 0);
  b[0] = 1;  // first page nonzero (and absent from a)
  const PageSharingReport report = ComparePages(ByteSpan(a), ByteSpan(b));
  EXPECT_EQ(report.zero_pages_b, 3u);
  EXPECT_EQ(report.sharable_pages, 0u);
}

TEST(PageSharingTest, PositionIndependent) {
  // A page's content matches regardless of where it sits (KSM semantics).
  Bytes a(4 * 4096, 0);
  Bytes b(4 * 4096, 0);
  Rng rng(3);
  Bytes page(4096);
  for (auto& byte : page) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  std::copy(page.begin(), page.end(), a.begin());                    // page 0 of a
  std::copy(page.begin(), page.end(), b.begin() + 3 * 4096);         // page 3 of b
  const PageSharingReport report = ComparePages(ByteSpan(a), ByteSpan(b));
  EXPECT_EQ(report.sharable_pages, 1u);
}

// Kernel-level sharing across randomization modes: the §6 story.
class KernelSharingTest : public ::testing::Test {
 protected:
  static double SharingBetweenBoots(RandoMode rando, uint64_t seed_a, uint64_t seed_b) {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, 0.01));
    EXPECT_TRUE(built.ok());
    Storage storage;
    storage.Put("vmlinux", built->vmlinux);
    MicroVmConfig config;
    config.mem_size_bytes = 128ull << 20;
    config.kernel_image = "vmlinux";
    config.rando = rando;
    if (!built->relocs.empty()) {
      storage.Put("vmlinux.relocs", SerializeRelocs(built->relocs));
      config.relocs_image = "vmlinux.relocs";
    }
    config.seed = seed_a;
    MicroVm vm_a(storage, config);
    config.seed = seed_b;
    MicroVm vm_b(storage, config);
    auto boot_a = vm_a.Boot();
    auto boot_b = vm_b.Boot();
    if (!boot_a.ok() || !boot_b.ok()) {
      ADD_FAILURE() << "boot failed: " << boot_a.status().ToString() << " / "
                    << boot_b.status().ToString();
      return -1.0;
    }
    auto region_a = vm_a.KernelRegion();
    auto region_b = vm_b.KernelRegion();
    EXPECT_TRUE(region_a.ok());
    EXPECT_TRUE(region_b.ok());
    return ComparePages(*region_a, *region_b).SharableFraction();
  }
};

TEST_F(KernelSharingTest, NoKaslrInstancesFullyShare) {
  EXPECT_GT(SharingBetweenBoots(RandoMode::kNone, 1, 2), 0.999);
}

TEST_F(KernelSharingTest, KaslrReducesSharing) {
  const double sharing = SharingBetweenBoots(RandoMode::kKaslr, 1, 2);
  // Relocated fields scatter across many pages, but reloc-free pages still
  // merge: partial sharing.
  EXPECT_LT(sharing, 0.9);
  EXPECT_GT(sharing, 0.05);
}

TEST_F(KernelSharingTest, FgKaslrNearlyEliminatesSharing) {
  const double fg = SharingBetweenBoots(RandoMode::kFgKaslr, 1, 2);
  const double base = SharingBetweenBoots(RandoMode::kKaslr, 1, 2);
  EXPECT_LT(fg, base) << "function shuffling must hurt page merging more than base KASLR";
  EXPECT_LT(fg, 0.4);
}

TEST_F(KernelSharingTest, SharedSeedRestoresSharing) {
  EXPECT_GT(SharingBetweenBoots(RandoMode::kFgKaslr, 9, 9), 0.999);
}

}  // namespace
}  // namespace imk
