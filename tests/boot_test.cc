// End-to-end boot tests: every boot mode x randomization mode must execute
// the synthetic kernel to completion with the correct init checksum — the
// strongest evidence that (in-monitor or self-) randomization preserved
// every relocation class, the pointer tables, the exception table, and the
// shuffled function layout.
#include <gtest/gtest.h>

#include "src/kernel/bzimage.h"
#include "src/kernel/kernel_builder.h"
#include "src/vmm/microvm.h"

namespace imk {
namespace {

constexpr double kTestScale = 0.01;
constexpr uint64_t kTestMem = 128ull << 20;

// Builds (once per profile/mode) and installs images into storage.
struct TestKernel {
  KernelBuildInfo info;
  Storage storage;

  explicit TestKernel(RandoMode rando, bool orc = false) {
    KernelConfig config = KernelConfig::Make(KernelProfile::kLupine, rando, kTestScale);
    config.unwinder_orc = orc;
    auto built = BuildKernel(config);
    if (!built.ok()) {
      ADD_FAILURE() << "BuildKernel: " << built.status().ToString();
      return;
    }
    info = std::move(*built);
    storage.Put("vmlinux", info.vmlinux);
    if (!info.relocs.empty()) {
      storage.Put("vmlinux.relocs", SerializeRelocs(info.relocs));
    }
  }

  MicroVmConfig DirectConfig(RandoMode rando) const {
    MicroVmConfig config;
    config.mem_size_bytes = kTestMem;
    config.kernel_image = "vmlinux";
    if (!info.relocs.empty()) {
      config.relocs_image = "vmlinux.relocs";
    }
    config.boot_mode = BootMode::kDirect;
    config.rando = rando;
    config.seed = 42;
    return config;
  }

  void AddBzImage(const std::string& codec, LoaderKind loader) {
    auto image = BuildBzImage(ByteSpan(info.vmlinux), info.relocs, codec, loader);
    ASSERT_TRUE(image.ok()) << image.status().ToString();
    storage.Put("bzimage-" + codec, SerializeBzImage(*image));
  }

  MicroVmConfig BzConfig(const std::string& codec, RandoMode rando) const {
    MicroVmConfig config;
    config.mem_size_bytes = kTestMem;
    config.kernel_image = "bzimage-" + codec;
    config.boot_mode = BootMode::kBzImage;
    config.rando = rando;
    config.seed = 42;
    return config;
  }
};

TEST(DirectBootTest, NoKaslrBootsWithCorrectChecksum) {
  TestKernel kernel(RandoMode::kNone);
  MicroVm vm(kernel.storage, kernel.DirectConfig(RandoMode::kNone));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_EQ(report->choice.virt_slide, 0u);
}

TEST(DirectBootTest, InMonitorKaslrBootsWithCorrectChecksum) {
  TestKernel kernel(RandoMode::kKaslr);
  MicroVm vm(kernel.storage, kernel.DirectConfig(RandoMode::kKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_NE(report->choice.virt_slide, 0u);  // seed 42 should give a nonzero slide
  EXPECT_GT(report->reloc_stats.total(), 100u);
}

TEST(DirectBootTest, InMonitorFgKaslrBootsWithCorrectChecksum) {
  TestKernel kernel(RandoMode::kFgKaslr);
  MicroVm vm(kernel.storage, kernel.DirectConfig(RandoMode::kFgKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_GT(report->sections_shuffled, 10u);
}

TEST(DirectBootTest, RandomizationWithoutRelocsIsRejected) {
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig config = kernel.DirectConfig(RandoMode::kKaslr);
  config.relocs_image.clear();  // forget Figure 8's extra argument
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(DirectBootTest, PvhProtocolBoots) {
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig config = kernel.DirectConfig(RandoMode::kKaslr);
  config.protocol = BootProtocol::kPvh;
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(DirectBootTest, DifferentSeedsGiveDifferentLayouts) {
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig config_a = kernel.DirectConfig(RandoMode::kKaslr);
  config_a.seed = 1;
  MicroVmConfig config_b = kernel.DirectConfig(RandoMode::kKaslr);
  config_b.seed = 2;
  MicroVm vm_a(kernel.storage, config_a);
  MicroVm vm_b(kernel.storage, config_b);
  auto report_a = vm_a.Boot();
  auto report_b = vm_b.Boot();
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());
  EXPECT_NE(report_a->choice.virt_slide, report_b->choice.virt_slide);
  EXPECT_TRUE(report_a->init_done);
  EXPECT_TRUE(report_b->init_done);
}

TEST(BzImageBootTest, Lz4SelfRandomizedKaslrBoots) {
  TestKernel kernel(RandoMode::kKaslr);
  kernel.AddBzImage("lz4", LoaderKind::kStandard);
  MicroVm vm(kernel.storage, kernel.BzConfig("lz4", RandoMode::kKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_GT(report->timeline.phase_ns(BootPhase::kDecompression), 0u);
}

TEST(BzImageBootTest, Lz4NoKaslrBoots) {
  TestKernel kernel(RandoMode::kNone);
  kernel.AddBzImage("lz4", LoaderKind::kStandard);
  MicroVm vm(kernel.storage, kernel.BzConfig("lz4", RandoMode::kNone));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(BzImageBootTest, CompressionNoneBoots) {
  TestKernel kernel(RandoMode::kKaslr);
  kernel.AddBzImage("none", LoaderKind::kStandard);
  MicroVm vm(kernel.storage, kernel.BzConfig("none", RandoMode::kKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(BzImageBootTest, CompressionNoneOptimizedBootsInPlace) {
  TestKernel kernel(RandoMode::kKaslr);
  kernel.AddBzImage("none", LoaderKind::kNoneOptimized);
  MicroVm vm(kernel.storage, kernel.BzConfig("none", RandoMode::kKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  // The optimized loader skips decompression entirely (§3.3).
  EXPECT_EQ(report->timeline.phase_ns(BootPhase::kDecompression), 0u);
}

TEST(BzImageBootTest, FgKaslrSelfRandomizedBoots) {
  TestKernel kernel(RandoMode::kFgKaslr);
  kernel.AddBzImage("lz4", LoaderKind::kStandard);
  MicroVm vm(kernel.storage, kernel.BzConfig("lz4", RandoMode::kFgKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_GT(report->sections_shuffled, 10u);
}

TEST(BzImageBootTest, FgKaslrNoneOptimizedBootsInPlace) {
  TestKernel kernel(RandoMode::kFgKaslr);
  kernel.AddBzImage("none", LoaderKind::kNoneOptimized);
  MicroVm vm(kernel.storage, kernel.BzConfig("none", RandoMode::kFgKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(OrcKernelTest, OrcEnabledKernelBootsUnderFgKaslr) {
  TestKernel kernel(RandoMode::kFgKaslr, /*orc=*/true);
  MicroVm vm(kernel.storage, kernel.DirectConfig(RandoMode::kFgKaslr));
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(DirectBootTest, RelocsFromElfBootsWithoutSidecarImage) {
  // Figure 8's alternative flow: no vmlinux.relocs image; the monitor runs
  // the relocs tool over the kernel's .rela sections itself.
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig config = kernel.DirectConfig(RandoMode::kKaslr);
  config.relocs_image.clear();
  config.relocs_from_elf = true;
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_NE(report->choice.virt_slide, 0u);
}

TEST(DirectBootTest, QemuLikeMonitorBootsAndPaysMore) {
  // The §2.2 cross-check profile: full board + firmware POST. Boots must
  // still verify, and the monitor phase must cost more than Firecracker's.
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig fc_config = kernel.DirectConfig(RandoMode::kKaslr);
  MicroVmConfig qemu_config = fc_config;
  qemu_config.monitor = MonitorKind::kQemuLike;
  MicroVm fc_vm(kernel.storage, fc_config);
  MicroVm qemu_vm(kernel.storage, qemu_config);
  auto fc_report = fc_vm.Boot();
  auto qemu_report = qemu_vm.Boot();
  ASSERT_TRUE(fc_report.ok()) << fc_report.status().ToString();
  ASSERT_TRUE(qemu_report.ok()) << qemu_report.status().ToString();
  EXPECT_EQ(fc_report->init_checksum, kernel.info.expected_checksum);
  EXPECT_EQ(qemu_report->init_checksum, kernel.info.expected_checksum);
  EXPECT_GT(qemu_report->timeline.measured_ns(BootPhase::kInMonitor),
            fc_report->timeline.measured_ns(BootPhase::kInMonitor));
}

TEST(BzImageBootTest, QemuLikeMonitorBootsBzImage) {
  TestKernel kernel(RandoMode::kFgKaslr);
  kernel.AddBzImage("lz4", LoaderKind::kStandard);
  MicroVmConfig config = kernel.BzConfig("lz4", RandoMode::kFgKaslr);
  config.monitor = MonitorKind::kQemuLike;
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
}

TEST(DirectBootTest, NoFgKaslrCmdlineDisablesShuffleButBoots) {
  // "nofgkaslr" on the command line: an fgkaslr kernel still pays the extra
  // ELF parsing (paper §5.1) but nothing moves.
  TestKernel kernel(RandoMode::kFgKaslr);
  MicroVmConfig config = kernel.DirectConfig(RandoMode::kFgKaslr);
  config.fgkaslr_disabled_cmdline = true;
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->init_done);
  EXPECT_EQ(report->init_checksum, kernel.info.expected_checksum);
  EXPECT_EQ(report->sections_shuffled, 0u);   // no shuffle happened
  EXPECT_NE(report->choice.virt_slide, 0u);   // base KASLR still applied
}

TEST(DirectBootTest, NoFgKaslrCmdlineOnPlainKernelIsRejected) {
  // A kernel without per-function sections cannot be booted as "fgkaslr
  // disabled" — there is nothing to parse (mirrors needing separate builds).
  TestKernel kernel(RandoMode::kKaslr);
  MicroVmConfig config = kernel.DirectConfig(RandoMode::kFgKaslr);
  config.fgkaslr_disabled_cmdline = true;
  MicroVm vm(kernel.storage, config);
  auto report = vm.Boot();
  EXPECT_FALSE(report.ok());
}

// The three kernel variants share generation logic, so the nokaslr and kaslr
// kernels must compute identical checksums (same code, different metadata).
TEST(KernelVariantsTest, ChecksumStableAcrossRandoModes) {
  TestKernel none_kernel(RandoMode::kNone);
  TestKernel kaslr_kernel(RandoMode::kKaslr);
  EXPECT_EQ(none_kernel.info.expected_checksum, kaslr_kernel.info.expected_checksum);
}

}  // namespace
}  // namespace imk
