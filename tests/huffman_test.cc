// Unit and property tests for the entropy-coding internals: bitstream,
// length-limited Huffman construction, canonical and table decoders.
#include <numeric>

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/compress/bitstream.h"
#include "src/compress/huffman.h"

namespace imk {
namespace {

TEST(BitstreamTest, LsbRoundTrip) {
  BitWriter writer;
  writer.WriteBits(0b1011, 4);
  writer.WriteBits(0x3ff, 10);
  writer.WriteBits(1, 1);
  Bytes data = writer.Take();
  BitReader reader((ByteSpan(data)));
  EXPECT_EQ(*reader.ReadBits(4), 0b1011u);
  EXPECT_EQ(*reader.ReadBits(10), 0x3ffu);
  EXPECT_EQ(*reader.ReadBits(1), 1u);
}

TEST(BitstreamTest, MsbFirstCodes) {
  BitWriter writer;
  writer.WriteBitsMsbFirst(0b110, 3);
  Bytes data = writer.Take();
  BitReader reader((ByteSpan(data)));
  EXPECT_EQ(*reader.ReadBit(), 1u);
  EXPECT_EQ(*reader.ReadBit(), 1u);
  EXPECT_EQ(*reader.ReadBit(), 0u);
}

TEST(BitstreamTest, ExhaustionFails) {
  Bytes data = {0xff};
  BitReader reader((ByteSpan(data)));
  EXPECT_TRUE(reader.ReadBits(8).ok());
  EXPECT_FALSE(reader.ReadBit().ok());
}

TEST(BitstreamTest, PeekDoesNotConsume) {
  BitWriter writer;
  writer.WriteBitsMsbFirst(0b10110111, 8);
  Bytes data = writer.Take();
  BitReader reader((ByteSpan(data)));
  EXPECT_EQ(reader.PeekBitsMsbFirst(4), 0b1011u);
  EXPECT_EQ(reader.PeekBitsMsbFirst(8), 0b10110111u);
  EXPECT_TRUE(reader.ConsumeBits(2).ok());
  EXPECT_EQ(reader.PeekBitsMsbFirst(2), 0b11u);
  // Remaining stream bits are 110111; peeking past the end pads with zeros.
  EXPECT_EQ(reader.PeekBitsMsbFirst(16), 0b1101110000000000u);
}

bool KraftValid(const std::vector<uint8_t>& lengths, uint32_t max_len) {
  uint64_t sum = 0;
  for (uint8_t len : lengths) {
    if (len > max_len) {
      return false;
    }
    if (len > 0) {
      sum += 1ull << (max_len - len);
    }
  }
  return sum <= (1ull << max_len);
}

TEST(HuffmanTest, LengthsSatisfyKraft) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> freqs(64 + rng.NextBelow(200));
    for (auto& f : freqs) {
      // Heavy-tailed frequencies stress the length limiter.
      f = rng.NextBelow(4) == 0 ? rng.NextBelow(1 << 20) : rng.NextBelow(4);
    }
    auto lengths = BuildHuffmanLengths(freqs, 15);
    ASSERT_TRUE(lengths.ok());
    EXPECT_TRUE(KraftValid(*lengths, 15));
    for (size_t i = 0; i < freqs.size(); ++i) {
      EXPECT_EQ(freqs[i] == 0, (*lengths)[i] == 0) << i;
    }
  }
}

TEST(HuffmanTest, LengthLimitIsEnforced) {
  // Fibonacci-ish frequencies force very deep trees without a limit.
  std::vector<uint64_t> freqs(40);
  uint64_t a = 1;
  uint64_t b = 1;
  for (auto& f : freqs) {
    f = a;
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  auto lengths = BuildHuffmanLengths(freqs, 11);
  ASSERT_TRUE(lengths.ok());
  EXPECT_TRUE(KraftValid(*lengths, 11));
  for (uint8_t len : *lengths) {
    EXPECT_LE(len, 11);
  }
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[7] = 100;
  auto lengths = BuildHuffmanLengths(freqs, 15);
  ASSERT_TRUE(lengths.ok());
  EXPECT_EQ((*lengths)[7], 1);
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  Rng rng(9);
  std::vector<uint64_t> freqs(100);
  for (auto& f : freqs) {
    f = 1 + rng.NextBelow(1000);
  }
  auto lengths = BuildHuffmanLengths(freqs, 15);
  ASSERT_TRUE(lengths.ok());
  HuffmanEncoder encoder(*lengths);
  auto decoder = HuffmanDecoder::Create(*lengths);
  ASSERT_TRUE(decoder.ok());

  std::vector<uint32_t> symbols(5000);
  for (auto& s : symbols) {
    s = static_cast<uint32_t>(rng.NextBelow(100));
  }
  BitWriter writer;
  for (uint32_t s : symbols) {
    encoder.Encode(writer, s);
  }
  Bytes data = writer.Take();
  BitReader reader((ByteSpan(data)));
  for (uint32_t expected : symbols) {
    auto decoded = decoder->Decode(reader);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, expected);
  }
}

TEST(HuffmanTest, TableDecoderMatchesCanonicalDecoder) {
  Rng rng(13);
  std::vector<uint64_t> freqs(256);
  for (auto& f : freqs) {
    f = rng.NextBelow(500);
  }
  auto lengths = BuildHuffmanLengths(freqs, HuffmanTableDecoder::kMaxLength);
  ASSERT_TRUE(lengths.ok());
  HuffmanEncoder encoder(*lengths);
  auto canonical = HuffmanDecoder::Create(*lengths);
  auto table = HuffmanTableDecoder::Create(*lengths);
  ASSERT_TRUE(canonical.ok());
  ASSERT_TRUE(table.ok());

  std::vector<uint32_t> symbols;
  for (size_t i = 0; i < freqs.size(); ++i) {
    if (freqs[i] > 0) {
      symbols.push_back(static_cast<uint32_t>(i));
    }
  }
  BitWriter writer;
  for (uint32_t s : symbols) {
    encoder.Encode(writer, s);
  }
  Bytes data = writer.Take();
  BitReader reader_a((ByteSpan(data)));
  BitReader reader_b((ByteSpan(data)));
  for (uint32_t expected : symbols) {
    EXPECT_EQ(*canonical->Decode(reader_a), expected);
    EXPECT_EQ(*table->Decode(reader_b), expected);
  }
}

TEST(HuffmanTest, OversubscribedCodeRejected) {
  // Three symbols of length 1 cannot form a prefix code.
  std::vector<uint8_t> lengths = {1, 1, 1};
  EXPECT_FALSE(HuffmanDecoder::Create(lengths).ok());
  EXPECT_FALSE(HuffmanTableDecoder::Create(lengths).ok());
}

TEST(HuffmanTest, InvalidStreamCodeFails) {
  // Incomplete code {0 -> "0"}; the bit pattern "1..." has no symbol.
  std::vector<uint8_t> lengths = {1, 0};
  auto decoder = HuffmanDecoder::Create(lengths);
  ASSERT_TRUE(decoder.ok());
  Bytes data = {0xff};
  BitReader reader((ByteSpan(data)));
  EXPECT_FALSE(decoder->Decode(reader).ok());
}

}  // namespace
}  // namespace imk
