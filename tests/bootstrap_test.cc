// Direct unit tests of the bootstrap-loader simulation: step accounting,
// placement rules, and error paths (the boot_test integration suite covers
// the happy paths end to end).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/base/align.h"
#include "src/bootstrap/bootstrap_loader.h"
#include "src/elf/elf_reader.h"
#include "src/elf/elf_types.h"
#include "src/kernel/kernel_builder.h"
#include "src/kernel/layout.h"

namespace imk {
namespace {

struct Images {
  KernelBuildInfo info;
  Bytes lz4_image;
  Bytes none_image;
  Bytes opt_image;

  explicit Images(RandoMode rando) {
    auto built = BuildKernel(KernelConfig::Make(KernelProfile::kLupine, rando, 0.01));
    EXPECT_TRUE(built.ok());
    info = std::move(*built);
    lz4_image = SerializeBzImage(
        *BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "lz4", LoaderKind::kStandard));
    none_image = SerializeBzImage(
        *BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "none", LoaderKind::kStandard));
    opt_image = SerializeBzImage(
        *BuildBzImage(ByteSpan(info.vmlinux), info.relocs, "none", LoaderKind::kNoneOptimized));
  }
};

// Places a serialized image in guest memory and runs the loader.
Result<BootstrapResult> RunLoader(GuestMemory& memory, const Bytes& image, RandoMode rando,
                            uint64_t bz_load, uint64_t seed = 7) {
  IMK_ASSIGN_OR_RETURN(BzImageInfo info, ParseBzImageHeader(ByteSpan(image)));
  IMK_RETURN_IF_ERROR(memory.Write(bz_load, ByteSpan(image)));
  BootstrapParams params;
  params.rando = rando;
  params.bzimage_load_phys = bz_load;
  Rng rng(seed);
  return RunBootstrapLoader(memory, info, params, rng);
}

TEST(BootstrapLoaderTest, MissingLoadAddressRejected) {
  Images images(RandoMode::kKaslr);
  GuestMemory memory(128ull << 20);
  auto header = ParseBzImageHeader(ByteSpan(images.lz4_image));
  ASSERT_TRUE(header.ok());
  BootstrapParams params;
  params.rando = RandoMode::kKaslr;
  params.bzimage_load_phys = 0;
  Rng rng(1);
  auto result = RunBootstrapLoader(memory, *header, params, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(BootstrapLoaderTest, OptimizedLoaderRequiresAlignment) {
  Images images(RandoMode::kKaslr);
  GuestMemory memory(128ull << 20);
  // Deliberately misaligned placement: the in-place kernel start misses
  // MIN_KERNEL_ALIGN, which the loader must reject (3.3's constraint).
  auto result = RunLoader(memory, images.opt_image, RandoMode::kKaslr, (40ull << 20) + 4096);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(BootstrapLoaderTest, OptimizedLoaderRejectsCompressedPayload) {
  Images images(RandoMode::kKaslr);
  // Hand-build an inconsistent container: optimized loader + lz4 payload.
  auto bz = BuildBzImage(ByteSpan(images.info.vmlinux), images.info.relocs, "lz4",
                         LoaderKind::kNoneOptimized);
  ASSERT_TRUE(bz.ok());
  Bytes image = SerializeBzImage(*bz);
  GuestMemory memory(128ull << 20);
  auto result = RunLoader(memory, image, RandoMode::kKaslr, 40ull << 20);
  EXPECT_FALSE(result.ok());
}

TEST(BootstrapLoaderTest, SelfRandomizationWithoutRelocsRejected) {
  Images images(RandoMode::kNone);  // kernel built without relocation info
  GuestMemory memory(256ull << 20);
  auto result = RunLoader(memory, images.lz4_image, RandoMode::kKaslr, 128ull << 20);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(BootstrapLoaderTest, StandardFlowPlacesKernelBelowStaging) {
  Images images(RandoMode::kKaslr);
  GuestMemory memory(256ull << 20);
  const uint64_t bz_load = 128ull << 20;
  auto result = RunLoader(memory, images.lz4_image, RandoMode::kKaslr, bz_load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result->choice.phys_load_addr + result->image_mem_size, bz_load);
  EXPECT_GE(result->choice.phys_load_addr, kPhysicalStart);
  EXPECT_GT(result->timings.decompress_ns, 0u);
  EXPECT_GT(result->reloc_stats.total(), 0u);
}

TEST(BootstrapLoaderTest, FgKaslrPaysLargerSetup) {
  Images images(RandoMode::kFgKaslr);
  auto run_setup = [&](RandoMode rando) -> uint64_t {
    GuestMemory memory(256ull << 20);
    auto header = ParseBzImageHeader(ByteSpan(images.lz4_image));
    EXPECT_TRUE(memory.Write(128ull << 20, ByteSpan(images.lz4_image)).ok());
    BootstrapParams params;
    params.rando = rando;
    params.bzimage_load_phys = 128ull << 20;
    Rng rng(3);
    auto result = RunBootstrapLoader(memory, *header, params, rng);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result->timings.setup_ns;
  };
  // 8x boot heap -> measurably more zeroing work (5.2). A single sample per
  // mode flakes on a loaded core, so compare the best of several runs: the
  // minimum is the noise-free cost of the work each mode actually does.
  uint64_t kaslr_setup = UINT64_MAX;
  uint64_t fg_setup = UINT64_MAX;
  for (int rep = 0; rep < 5; ++rep) {
    kaslr_setup = std::min(kaslr_setup, run_setup(RandoMode::kKaslr));
    fg_setup = std::min(fg_setup, run_setup(RandoMode::kFgKaslr));
  }
  EXPECT_GT(fg_setup, kaslr_setup);
}

TEST(BootstrapLoaderTest, OptimizedSkipsDecompressionAndLoad) {
  Images images(RandoMode::kKaslr);
  GuestMemory memory(256ull << 20);
  auto header = ParseBzImageHeader(ByteSpan(images.opt_image));
  ASSERT_TRUE(header.ok());
  // Compute the aligned placement exactly the way the monitor does: the
  // kernel's first loadable byte must land MIN_KERNEL_ALIGN-aligned at or
  // above 16 MiB.
  auto elf = ElfReader::Parse(
      ByteSpan(images.opt_image.data() + header->PayloadOffset() + 8,
               images.opt_image.size() - header->PayloadOffset() - 8));
  ASSERT_TRUE(elf.ok());
  uint64_t first_load_offset = UINT64_MAX;
  uint64_t lowest_vaddr = UINT64_MAX;
  for (const auto& phdr : elf->program_headers()) {
    if (phdr.p_type == kPtLoad && phdr.p_vaddr < lowest_vaddr) {
      lowest_vaddr = phdr.p_vaddr;
      first_load_offset = phdr.p_offset;
    }
  }
  ASSERT_NE(first_load_offset, UINT64_MAX);
  const uint64_t in_image_text = header->PayloadOffset() + 8 + first_load_offset;
  const uint64_t bz_load =
      AlignUp(kPhysicalStart + in_image_text, kMinKernelAlign) - in_image_text;

  auto result = RunLoader(memory, images.opt_image, RandoMode::kKaslr, bz_load);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->timings.decompress_ns, 0u);
  // In-place: the kernel physical base sits inside the image placement.
  EXPECT_GT(result->choice.phys_load_addr, bz_load);
}

}  // namespace
}  // namespace imk
